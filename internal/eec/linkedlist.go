package eec

import (
	"math"

	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// lnode is a sorted-list node. Keys are immutable; only the next pointer
// is transactional, so conflict detection happens exactly on the links a
// mutation rewires — the paper's field-granularity instrumentation. The
// link is a typed variable: traversals and updates move raw pointers, not
// boxed interfaces.
type lnode struct {
	key  int
	next mvar.Var[lnode] // holds *lnode
}

// list is a sorted singly linked list with ±∞ sentinels, shared by
// LinkedListSet and HashSet buckets. All methods take an open transaction.
type list struct {
	head *lnode
}

func newList() list {
	tail := &lnode{key: math.MaxInt}
	head := &lnode{key: math.MinInt}
	head.next.Init(tail)
	return list{head: head}
}

// find returns the rightmost node with key < target (prev) and its
// successor (curr, with curr.key >= target). This is the read-only-prefix
// traversal elastic transactions accelerate.
//
//compose:noalloc
func (l list) find(tx stm.Tx, key int) (prev, curr *lnode) {
	prev = l.head
	curr = stm.ReadPtr(tx, &prev.next)
	for curr.key < key {
		prev = curr
		curr = stm.ReadPtr(tx, &curr.next)
	}
	return prev, curr
}

//compose:noalloc
func (l list) contains(tx stm.Tx, key int) bool {
	_, curr := l.find(tx, key)
	return curr.key == key
}

func (l list) add(tx stm.Tx, key int) bool {
	prev, curr := l.find(tx, key)
	if curr.key == key {
		return false
	}
	n := &lnode{key: key}
	n.next.Init(curr)
	stm.WritePtr(tx, &prev.next, n)
	return true
}

func (l list) remove(tx stm.Tx, key int) bool {
	prev, curr := l.find(tx, key)
	if curr.key != key {
		return false
	}
	succ := stm.ReadPtr(tx, &curr.next)
	stm.WritePtr(tx, &prev.next, succ)
	// Rewrite the removed node's link with the same value: the version
	// bump makes any concurrent elastic transaction about to insert after
	// curr (whose protected window holds curr.next) fail validation.
	// Readers racing past curr still see a well-formed list.
	stm.WritePtr(tx, &curr.next, succ)
	return true
}

func (l list) elements(tx stm.Tx, out []int) []int {
	curr := stm.ReadPtr(tx, &l.head.next)
	for curr.key != math.MaxInt {
		out = append(out, curr.key)
		curr = stm.ReadPtr(tx, &curr.next)
	}
	return out
}

// LinkedListSet is the sorted linked list set of e.e.c — the structure
// where elastic transactions shine (Fig. 6): traversals are long and
// read-only, so classic transactions abort constantly while elastic ones
// only protect the insertion window.
type LinkedListSet struct {
	l list
}

// NewLinkedListSet returns an empty LinkedListSet.
func NewLinkedListSet() *LinkedListSet {
	return &LinkedListSet{l: newList()}
}

// Name implements Set.
func (s *LinkedListSet) Name() string { return "linkedlist" }

// Contains implements Set.
func (s *LinkedListSet) Contains(th *stm.Thread, key int) bool {
	return frameOf(th).listOp(opContains, s.l, key)
}

// Add implements Set.
func (s *LinkedListSet) Add(th *stm.Thread, key int) bool {
	return frameOf(th).listOp(opAdd, s.l, key)
}

// Remove implements Set.
func (s *LinkedListSet) Remove(th *stm.Thread, key int) bool {
	return frameOf(th).listOp(opRemove, s.l, key)
}

// AddAll implements Set by composing Add.
func (s *LinkedListSet) AddAll(th *stm.Thread, keys []int) bool {
	return addAll(th, s, keys)
}

// RemoveAll implements Set by composing Remove.
func (s *LinkedListSet) RemoveAll(th *stm.Thread, keys []int) bool {
	return removeAll(th, s, keys)
}

// Size implements Set with a single atomic traversal.
func (s *LinkedListSet) Size(th *stm.Thread) int {
	return len(s.Elements(th))
}

// Elements implements Set.
func (s *LinkedListSet) Elements(th *stm.Thread) []int {
	var out []int
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		out = s.l.elements(tx, out[:0])
		return nil
	})
	return out
}
