// Package boost implements transactional boosting (Herlihy & Koskinen,
// PPoPP 2008) — the second relaxed transactional model the paper analyses
// (§VIII): operations run eagerly against a linearizable base object
// under per-key *abstract locks*, with *compensating operations* undoing
// them on abort.
//
// The paper observes that boosting, as published, does not address
// composition, but that "passing abstract locks from the child to the
// parent transaction would make transactional boosting satisfy
// outheritance and therefore provide composition". This package
// implements exactly that: with outheritance enabled (New(true)), a
// nested transaction's abstract locks and compensation log are passed to
// its parent at commit; with it disabled (New(false)), the locks are
// released and the child's effects become final at child commit —
// reproducing the same composition violations as E-STM, which the tests
// demonstrate. Abstract locks map to the model's protection elements, so
// instrumented executions can be checked against Definition 4.1 with
// internal/check, realising the paper's §IX plan of using outheritance
// across multiple relaxation types.
package boost

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// ErrConflict is returned when a transaction exceeds its retry budget.
var ErrConflict = errors.New("boost: transaction conflict")

// spinBudget bounds how long an operation waits for an abstract lock
// before aborting the whole nest (deadlock avoidance by timeout).
const spinBudget = 1 << 12

// TM is a boosting domain: transactions from one TM contend on its
// abstract locks.
type TM struct {
	outherit bool
	tracer   stm.Tracer
	txIDs    atomic.Uint64
	thIDs    atomic.Int64
	elems    sync.Map // *Lock -> *mvar.Word (protection-element proxy)
}

// New returns a boosting domain. With outherit true, nested commits pass
// their abstract locks and compensation logs to the parent (the
// composable variant); with false, they release and discard them (the
// original, non-composable behaviour).
func New(outherit bool) *TM { return &TM{outherit: outherit} }

// Name identifies the domain configuration.
func (tm *TM) Name() string {
	if tm.outherit {
		return "boost-outherit"
	}
	return "boost"
}

// Outherits reports whether nested commits pass their locks upward.
func (tm *TM) Outherits() bool { return tm.outherit }

// SetTracer installs a protection-element tracer (abstract locks appear
// as elements). Install before running transactions.
func (tm *TM) SetTracer(tr stm.Tracer) { tm.tracer = tr }

// elemOf returns the protection-element proxy of an abstract lock.
func (tm *TM) elemOf(l *Lock) *mvar.Word {
	if v, ok := tm.elems.Load(l); ok {
		return v.(*mvar.Word)
	}
	v, _ := tm.elems.LoadOrStore(l, new(mvar.Word))
	return v.(*mvar.Word)
}

// Lock is one abstract lock: the unit of conflict detection of a boosted
// object (e.g. one per key of a boosted set). The zero value is unlocked.
type Lock struct {
	mu    sync.Mutex
	owner *Tx // top-level transaction of the owning nest, nil if free
}

// Thread is the per-goroutine context of a boosting domain.
type Thread struct {
	// ID names the thread as a process in traced histories.
	ID int
	// MaxRetries, when non-zero, bounds attempts per Atomic call.
	MaxRetries int

	tm   *TM
	cur  *Tx
	pool []*Tx // recycled Tx frames: Atomic allocates nothing in steady state
}

// NewThread creates a thread context.
func (tm *TM) NewThread() *Thread {
	return &Thread{ID: int(tm.thIDs.Add(1)), tm: tm}
}

// conflictSignal unwinds a doomed attempt to the outermost Atomic.
type conflictSignal struct{}

// userAbort unwinds the whole nest carrying the user's error.
type userAbort struct{ err error }

// lockEntry attributes a held lock to the transaction that acquired it
// (for trace attribution on release).
type lockEntry struct {
	l  *Lock
	by uint64
}

// Tx is a boosted transaction. The whole nest shares one lock list and
// one compensation log, owned by the top-level transaction; each nested
// transaction marks the segment it contributed, so a non-outheriting
// child commit can release exactly its own locks, while a conflict abort
// anywhere compensates and releases everything at the top.
type Tx struct {
	tm     *TM
	th     *Thread
	id     uint64
	parent *Tx
	top    *Tx

	// Shared state (meaningful on top only).
	locks []lockEntry
	undo  []func()

	// Segment starts of this transaction within the shared slices.
	lockStart int
	undoStart int
}

// Atomic runs fn as a boosted transaction, retrying on abstract-lock
// conflicts. Nested calls compose: the child's locks and compensations
// are outherited to the parent at commit (or released, per the domain
// configuration).
func (th *Thread) Atomic(fn func(tx *Tx) error) error {
	if th.cur != nil {
		return th.runNested(fn)
	}
	for attempt := 0; ; attempt++ {
		tx := th.begin(nil)
		err, retry := th.runTop(tx, fn)
		th.cur = nil
		th.recycle(tx)
		if !retry {
			return err
		}
		if th.MaxRetries > 0 && attempt+1 >= th.MaxRetries {
			return ErrConflict
		}
		if attempt > 2 {
			time.Sleep(time.Duration(1+attempt) * time.Microsecond)
		}
	}
}

func (th *Thread) begin(parent *Tx) *Tx {
	var tx *Tx
	if n := len(th.pool); n > 0 {
		tx = th.pool[n-1]
		th.pool = th.pool[:n-1]
	} else {
		tx = new(Tx)
	}
	*tx = Tx{tm: th.tm, th: th, id: th.tm.txIDs.Add(1), parent: parent,
		locks: tx.locks[:0], undo: tx.undo[:0]}
	if parent == nil {
		tx.top = tx
	} else {
		tx.top = parent.top
		tx.lockStart = len(tx.top.locks)
		tx.undoStart = len(tx.top.undo)
	}
	th.cur = tx
	if tr := th.tm.tracer; tr != nil {
		var pid uint64
		if parent != nil {
			pid = parent.id
		}
		tr.TxBegin(th.ID, tx.id, pid, stm.Regular)
	}
	return tx
}

func (th *Thread) runTop(tx *Tx, fn func(tx *Tx) error) (err error, retry bool) {
	defer func() {
		if r := recover(); r != nil {
			switch s := r.(type) {
			case conflictSignal:
				tx.abortFrom(0, 0)
				err, retry = nil, true
			case userAbort:
				tx.abortFrom(0, 0)
				err, retry = s.err, false
			default:
				tx.abortFrom(0, 0)
				th.cur = nil
				panic(r)
			}
		}
	}()
	if e := fn(tx); e != nil {
		tx.abortFrom(0, 0)
		return e, false
	}
	tx.commitTop()
	return nil, false
}

// recycle returns a finished Tx frame to the thread's pool. Safe by the
// time a transaction ends: commitTop/abortFrom release every abstract
// lock first, so no Lock.owner can still point at the recycled frame,
// and lock entries attribute by numeric id, not pointer.
func (th *Thread) recycle(tx *Tx) {
	th.pool = append(th.pool, tx)
}

func (th *Thread) runNested(fn func(tx *Tx) error) error {
	parent := th.cur
	child := th.begin(parent)
	defer func() {
		th.cur = parent
		th.recycle(child)
	}()
	if err := fn(child); err != nil {
		// Abort the child only; the userAbort panic lets the outer
		// levels unwind (and compensate their own segments).
		child.top.abortSegment(child)
		panic(userAbort{err})
	}
	child.commitNested()
	return nil
}

// Acquire takes an abstract lock on behalf of the transaction's nest,
// spinning briefly and aborting the nest on sustained contention.
// Reentrant acquisitions by the same nest are no-ops.
func (tx *Tx) Acquire(l *Lock) {
	top := tx.top
	for spin := 0; ; spin++ {
		l.mu.Lock()
		if l.owner == nil {
			l.owner = top
			l.mu.Unlock()
			top.locks = append(top.locks, lockEntry{l: l, by: tx.id})
			if tr := tx.tm.tracer; tr != nil {
				tr.Acquire(tx.th.ID, tx.id, tx.tm.elemOf(l))
			}
			return
		}
		if l.owner == top {
			l.mu.Unlock()
			return // already held by this nest
		}
		l.mu.Unlock()
		if spin >= spinBudget {
			panic(conflictSignal{})
		}
	}
}

// Defer registers a compensating operation, run (in reverse order) if the
// transaction aborts.
func (tx *Tx) Defer(compensate func()) {
	tx.top.undo = append(tx.top.undo, compensate)
}

// Op records an operation event on the traced history (for checking
// against the model); it has no semantic effect.
func (tx *Tx) Op(l *Lock, op string, val any) {
	if tr := tx.tm.tracer; tr != nil {
		tr.Op(tx.th.ID, tx.id, tx.tm.elemOf(l), op, val)
	}
}

// releaseFrom frees the nest's locks acquired at or after index from.
func (tx *Tx) releaseFrom(from int) {
	top := tx.top
	for _, e := range top.locks[from:] {
		e.l.mu.Lock()
		if e.l.owner == top {
			e.l.owner = nil
		}
		e.l.mu.Unlock()
		if tr := tx.tm.tracer; tr != nil {
			tr.Release(tx.th.ID, e.by, tx.tm.elemOf(e.l))
		}
	}
	top.locks = top.locks[:from]
}

// abortFrom compensates the shared log back to undoStart (reverse order)
// and frees the locks back to lockStart, emitting this transaction's
// abort event.
func (tx *Tx) abortFrom(undoStart, lockStart int) {
	top := tx.top
	for i := len(top.undo) - 1; i >= undoStart; i-- {
		top.undo[i]()
	}
	top.undo = top.undo[:undoStart]
	if tr := tx.tm.tracer; tr != nil {
		tr.TxAbort(tx.th.ID, tx.id)
	}
	tx.releaseFrom(lockStart)
}

// abortSegment aborts exactly child's contribution.
func (tx *Tx) abortSegment(child *Tx) {
	child.abortFrom(child.undoStart, child.lockStart)
}

// commitTop finalises a top-level transaction: effects are already
// applied; discard compensations and free every lock.
func (tx *Tx) commitTop() {
	tx.undo = tx.undo[:0]
	if tr := tx.tm.tracer; tr != nil {
		tr.TxCommit(tx.th.ID, tx.id)
	}
	tx.releaseFrom(0)
}

// commitNested applies the outheritance rule: pass locks and
// compensations to the parent (they stay in the shared nest state), or —
// in the non-composable configuration — release the child's locks and
// make its effects final.
func (tx *Tx) commitNested() {
	if tr := tx.tm.tracer; tr != nil {
		tr.TxCommit(tx.th.ID, tx.id)
	}
	if tx.tm.outherit {
		return // locks and compensations remain with the nest: outherited
	}
	top := tx.top
	top.undo = top.undo[:tx.undoStart] // effects final: no compensation
	tx.releaseFrom(tx.lockStart)
}
