package boost

import (
	"sync"

	"oestm/internal/seqset"
)

// Set is a boosted integer set: a linearizable base set (a sequential
// structure behind a mutex) whose operations are made transactional by
// abstract per-key locks and compensating operations. Unlike the
// STM-based e.e.c structures, reads and writes here never touch
// transactional memory words — conflict detection is entirely at the
// abstraction level, which is what lets boosted operations of commuting
// keys run without any conflict at all.
type Set struct {
	tm    *TM
	mu    sync.Mutex
	inner seqset.Set
	locks sync.Map // key int -> *Lock
}

// NewSet returns an empty boosted set in the given domain.
func NewSet(tm *TM) *Set {
	return &Set{tm: tm, inner: seqset.NewSkipListSet()}
}

// lockOf returns the abstract lock of a key.
func (s *Set) lockOf(key int) *Lock {
	if l, ok := s.locks.Load(key); ok {
		return l.(*Lock)
	}
	l, _ := s.locks.LoadOrStore(key, &Lock{})
	return l.(*Lock)
}

// Contains reports membership; it may be called directly (running its
// own transaction) or inside an Atomic region (composing).
func (s *Set) Contains(th *Thread, key int) bool {
	var res bool
	_ = th.Atomic(func(tx *Tx) error {
		res = s.contains(tx, key)
		return nil
	})
	return res
}

func (s *Set) contains(tx *Tx, key int) bool {
	tx.Acquire(s.lockOf(key))
	s.mu.Lock()
	res := s.inner.Contains(key)
	s.mu.Unlock()
	tx.Op(s.lockOf(key), "contains", res)
	return res
}

// Add inserts key; it reports whether the set changed.
func (s *Set) Add(th *Thread, key int) bool {
	var res bool
	_ = th.Atomic(func(tx *Tx) error {
		res = s.add(tx, key)
		return nil
	})
	return res
}

func (s *Set) add(tx *Tx, key int) bool {
	tx.Acquire(s.lockOf(key))
	s.mu.Lock()
	changed := s.inner.Add(key)
	s.mu.Unlock()
	tx.Op(s.lockOf(key), "add", changed)
	if changed {
		tx.Defer(func() {
			s.mu.Lock()
			s.inner.Remove(key)
			s.mu.Unlock()
		})
	}
	return changed
}

// Remove deletes key; it reports whether the set changed.
func (s *Set) Remove(th *Thread, key int) bool {
	var res bool
	_ = th.Atomic(func(tx *Tx) error {
		res = s.remove(tx, key)
		return nil
	})
	return res
}

func (s *Set) remove(tx *Tx, key int) bool {
	tx.Acquire(s.lockOf(key))
	s.mu.Lock()
	changed := s.inner.Remove(key)
	s.mu.Unlock()
	tx.Op(s.lockOf(key), "remove", changed)
	if changed {
		tx.Defer(func() {
			s.mu.Lock()
			s.inner.Add(key)
			s.mu.Unlock()
		})
	}
	return changed
}

// AddAll inserts every key atomically (a composition of Add).
func (s *Set) AddAll(th *Thread, keys []int) bool {
	changed := false
	_ = th.Atomic(func(*Tx) error {
		changed = false
		for _, k := range keys {
			if s.Add(th, k) {
				changed = true
			}
		}
		return nil
	})
	return changed
}

// RemoveAll deletes every key atomically (a composition of Remove).
func (s *Set) RemoveAll(th *Thread, keys []int) bool {
	changed := false
	_ = th.Atomic(func(*Tx) error {
		changed = false
		for _, k := range keys {
			if s.Remove(th, k) {
				changed = true
			}
		}
		return nil
	})
	return changed
}

// InsertIfAbsent atomically inserts x only if y is absent — the paper's
// Fig. 1 composition, here over boosted operations.
func (s *Set) InsertIfAbsent(th *Thread, x, y int) bool {
	inserted := false
	_ = th.Atomic(func(*Tx) error {
		inserted = false
		if !s.Contains(th, y) {
			inserted = s.Add(th, x)
		}
		return nil
	})
	return inserted
}
