package boost_test

import (
	"errors"
	"sync"
	"testing"

	"oestm/internal/boost"
	"oestm/internal/check"
	"oestm/internal/history"
)

func TestNames(t *testing.T) {
	if boost.New(true).Name() != "boost-outherit" || !boost.New(true).Outherits() {
		t.Fatal("outheriting domain misconfigured")
	}
	if boost.New(false).Name() != "boost" || boost.New(false).Outherits() {
		t.Fatal("plain domain misconfigured")
	}
}

func TestBasicSetOps(t *testing.T) {
	for _, outherit := range []bool{true, false} {
		tm := boost.New(outherit)
		th := tm.NewThread()
		s := boost.NewSet(tm)
		if s.Contains(th, 1) {
			t.Fatal("empty set contains 1")
		}
		if !s.Add(th, 1) || s.Add(th, 1) {
			t.Fatal("Add semantics broken")
		}
		if !s.Contains(th, 1) {
			t.Fatal("added key missing")
		}
		if !s.Remove(th, 1) || s.Remove(th, 1) {
			t.Fatal("Remove semantics broken")
		}
	}
}

// TestCompensationOnUserAbort: eager effects must be undone when the
// transaction aborts with a user error.
func TestCompensationOnUserAbort(t *testing.T) {
	tm := boost.New(true)
	th := tm.NewThread()
	s := boost.NewSet(tm)
	s.Add(th, 5)
	sentinel := errors.New("boom")
	err := th.Atomic(func(tx *boost.Tx) error {
		s.Add(th, 6)    // composed child, applied eagerly
		s.Remove(th, 5) // another child
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if s.Contains(th, 6) {
		t.Fatal("aborted add not compensated")
	}
	if !s.Contains(th, 5) {
		t.Fatal("aborted remove not compensated")
	}
}

// TestNestedUserAbortCompensatesWholeNest: an error from an inner region
// unwinds and compensates everything, including the parent's earlier
// children.
func TestNestedUserAbortCompensatesWholeNest(t *testing.T) {
	tm := boost.New(true)
	th := tm.NewThread()
	s := boost.NewSet(tm)
	sentinel := errors.New("inner")
	err := th.Atomic(func(*boost.Tx) error {
		s.Add(th, 1)
		return th.Atomic(func(*boost.Tx) error {
			s.Add(th, 2)
			return sentinel
		})
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if s.Contains(th, 1) || s.Contains(th, 2) {
		t.Fatal("nested abort leaked effects")
	}
}

// TestCommutingOpsDontConflict: boosted operations on distinct keys
// proceed fully in parallel (no retries), because abstract locks are
// per-key.
func TestCommutingOpsDontConflict(t *testing.T) {
	tm := boost.New(true)
	var wg sync.WaitGroup
	s := boost.NewSet(tm)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			th := tm.NewThread()
			th.MaxRetries = 1 // any conflict would fail the test
			for i := 0; i < 200; i++ {
				k := base*1000 + i
				if err := th.Atomic(func(tx *boost.Tx) error {
					s.Add(th, k)
					return nil
				}); err != nil {
					t.Errorf("commuting op conflicted: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPerKeyBalanceUnderContention: concurrent add/remove on a small key
// range must preserve the per-key balance invariant.
func TestPerKeyBalanceUnderContention(t *testing.T) {
	tm := boost.New(true)
	s := boost.NewSet(tm)
	const keys = 8
	var adds, removes [keys]int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; i < 200; i++ {
				k := (seed + i*13) % keys
				if i%2 == 0 {
					if s.Add(th, k) {
						mu.Lock()
						adds[k]++
						mu.Unlock()
					}
				} else {
					if s.Remove(th, k) {
						mu.Lock()
						removes[k]++
						mu.Unlock()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	th := tm.NewThread()
	for k := 0; k < keys; k++ {
		balance := adds[k] - removes[k]
		if balance != 0 && balance != 1 {
			t.Fatalf("key %d: impossible balance %d", k, balance)
		}
		if s.Contains(th, k) != (balance == 1) {
			t.Fatalf("key %d: membership disagrees with balance %d", k, balance)
		}
	}
}

// stagedInsertIfAbsent reproduces Fig. 1 over boosted operations: the
// adversary inserts y between the composition's contains(y) and its
// commit.
func stagedInsertIfAbsent(t *testing.T, tm *boost.TM) (violated bool, attempts int) {
	t.Helper()
	th := tm.NewThread()
	s := boost.NewSet(tm)
	const x, y = 1, 2
	_ = th.Atomic(func(*boost.Tx) error {
		attempts++
		absent := !s.Contains(th, y)
		if attempts == 1 {
			done := make(chan struct{})
			go func() {
				defer close(done)
				adv := tm.NewThread()
				adv.MaxRetries = 64 // blocked by outherited lock: give up
				s.Add(adv, y)
			}()
			<-done
		}
		if absent {
			s.Add(th, x)
		}
		return nil
	})
	return s.Contains(th, x) && s.Contains(th, y), attempts
}

// TestBoostingComposesWithOutheritance: with lock passing, the adversary
// cannot slip between the children (it blocks on the outherited abstract
// lock and gives up), so the composition stays atomic — §VIII's remark
// realised.
func TestBoostingComposesWithOutheritance(t *testing.T) {
	violated, _ := stagedInsertIfAbsent(t, boost.New(true))
	if violated {
		t.Fatal("outheriting boosting violated insertIfAbsent atomicity")
	}
}

// TestBoostingViolatesWithoutOutheritance: with locks released at child
// commit, the adversary's insert lands mid-composition and the composed
// operation commits a stale decision.
func TestBoostingViolatesWithoutOutheritance(t *testing.T) {
	violated, attempts := stagedInsertIfAbsent(t, boost.New(false))
	if !violated {
		t.Fatal("expected the Fig. 1 violation without lock passing")
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (the violation commits silently)", attempts)
	}
}

// TestTracedBoostingSatisfiesDef41: record an outheriting boosted
// composition and machine-check Definition 4.1 — the cross-model reuse
// of outheritance promised by §IX.
func TestTracedBoostingSatisfiesDef41(t *testing.T) {
	tm := boost.New(true)
	rec := history.NewRecorder()
	tm.SetTracer(rec)
	th := tm.NewThread()
	s := boost.NewSet(tm)
	_ = th.Atomic(func(*boost.Tx) error {
		s.Contains(th, 2)
		s.Add(th, 1)
		return nil
	})
	h := rec.History()
	comps := rec.Compositions()
	if len(comps) != 1 {
		t.Fatalf("compositions = %v", comps)
	}
	if !check.RelaxSerial(h) {
		t.Fatalf("traced boosted history not relax-serial:\n%s", h)
	}
	if !check.IsComposition(h, comps[0]) {
		t.Fatalf("children %v not a composition in:\n%s", comps[0], h)
	}
	if !check.Outheritance(h, comps[0]) {
		t.Fatalf("boosted composition violates Def. 4.1:\n%s", h)
	}
}

// TestTracedBoostingViolatesDef41WithoutPassing is the negative control.
func TestTracedBoostingViolatesDef41WithoutPassing(t *testing.T) {
	tm := boost.New(false)
	rec := history.NewRecorder()
	tm.SetTracer(rec)
	th := tm.NewThread()
	s := boost.NewSet(tm)
	_ = th.Atomic(func(*boost.Tx) error {
		s.Contains(th, 2)
		s.Add(th, 1)
		return nil
	})
	h := rec.History()
	comps := rec.Compositions()
	if len(comps) != 1 {
		t.Fatalf("compositions = %v", comps)
	}
	if check.Outheritance(h, comps[0]) {
		t.Fatalf("non-passing boosting should violate Def. 4.1:\n%s", h)
	}
}

// TestReentrantAcquire: the same nest may touch a key twice without
// deadlocking on its own abstract lock.
func TestReentrantAcquire(t *testing.T) {
	tm := boost.New(true)
	th := tm.NewThread()
	s := boost.NewSet(tm)
	err := th.Atomic(func(*boost.Tx) error {
		s.Add(th, 1)
		s.Remove(th, 1)
		s.Add(th, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains(th, 1) {
		t.Fatal("final state wrong")
	}
}

// TestBulkComposition: AddAll/RemoveAll compose and stay atomic under an
// observing thread (coarse check via membership pairs).
func TestBulkComposition(t *testing.T) {
	tm := boost.New(true)
	th := tm.NewThread()
	s := boost.NewSet(tm)
	if !s.AddAll(th, []int{1, 2, 3}) {
		t.Fatal("AddAll reported no change")
	}
	if s.AddAll(th, []int{1, 2}) {
		t.Fatal("AddAll of present keys reported change")
	}
	if !s.RemoveAll(th, []int{2, 9}) {
		t.Fatal("RemoveAll reported no change")
	}
	if s.Contains(th, 2) || !s.Contains(th, 1) || !s.Contains(th, 3) {
		t.Fatal("bulk results wrong")
	}
}

// TestInsertIfAbsentSemantics: the composed operation behaves per spec
// single-threaded.
func TestInsertIfAbsentSemantics(t *testing.T) {
	tm := boost.New(true)
	th := tm.NewThread()
	s := boost.NewSet(tm)
	if !s.InsertIfAbsent(th, 10, 20) || !s.Contains(th, 10) {
		t.Fatal("insert with y absent failed")
	}
	s.Add(th, 20)
	if s.InsertIfAbsent(th, 30, 20) || s.Contains(th, 30) {
		t.Fatal("insert with y present happened")
	}
}

// TestAtomicNoAlloc pins the pooled-Tx contract the serving layer's
// boosted hot path relies on: a steady-state Atomic (top-level and with
// one nested child) allocates nothing — Tx frames recycle through the
// thread's pool and lock/undo segments reuse their capacity.
func TestAtomicNoAlloc(t *testing.T) {
	tm := boost.New(true)
	th := tm.NewThread()
	var l1, l2 boost.Lock
	body := func(tx *boost.Tx) error {
		tx.Acquire(&l1)
		return th.Atomic(func(tx *boost.Tx) error {
			tx.Acquire(&l2)
			return nil
		})
	}
	if err := th.Atomic(body); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := th.Atomic(body); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("steady-state Atomic allocates %.1f times, want 0", got)
	}
}
