package txset

import (
	"testing"

	"oestm/internal/mvar"
)

func words(n int) []*mvar.Word {
	out := make([]*mvar.Word, n)
	for i := range out {
		out[i] = new(mvar.Word)
	}
	return out
}

func TestWriteSetLinearAndSpill(t *testing.T) {
	ws := &WriteSet{}
	vs := words(40)
	for i, w := range vs {
		if ws.Find(w) != -1 {
			t.Fatalf("found %d before insert", i)
		}
		ws.Append(Write{W: w, Val: mvar.FlagRaw(i%2 == 0)})
		if got := ws.Find(w); got != i {
			t.Fatalf("Find after insert = %d, want %d", got, i)
		}
	}
	if ws.Len() != len(vs) {
		t.Fatalf("len = %d", ws.Len())
	}
	// Spilled index must agree with the slice for every entry.
	for i, w := range vs {
		if got := ws.Find(w); got != i {
			t.Fatalf("post-spill Find = %d, want %d", got, i)
		}
		if ws.At(i).W != w {
			t.Fatalf("At(%d) wrong word", i)
		}
	}
}

func TestWriteSetResetKeepsCapacityAndClearsIndex(t *testing.T) {
	ws := &WriteSet{}
	vs := words(40)
	for _, w := range vs {
		ws.Append(Write{W: w})
	}
	ws.Reset()
	if ws.Len() != 0 {
		t.Fatalf("len after reset = %d", ws.Len())
	}
	for _, w := range vs {
		if ws.Find(w) != -1 {
			t.Fatal("stale entry visible after reset")
		}
	}
	// Reuse: appends after reset must not resurrect stale indices.
	ws.Append(Write{W: vs[7]})
	if got := ws.Find(vs[7]); got != 0 {
		t.Fatalf("Find after reuse = %d, want 0", got)
	}
	if ws.Find(vs[8]) != -1 {
		t.Fatal("unrelated word found after reuse")
	}
}

func TestWriteSetUpdateInPlace(t *testing.T) {
	ws := &WriteSet{}
	w := new(mvar.Word)
	i := ws.Append(Write{W: w, Val: mvar.FlagRaw(false)})
	ws.At(i).Val = mvar.FlagRaw(true)
	if !mvar.FlagValue(ws.At(ws.Find(w)).Val) {
		t.Fatal("in-place update lost")
	}
}
