// Package txset provides the typed read/write-set entry representation
// shared by every STM engine in this repository (core, tl2, lsa, swisstm).
//
// Entries are flat structs over *mvar.Word and mvar.Raw — no interface
// boxing — so recording a read or buffering a write never allocates once
// the backing arrays have warmed up.
//
// # Write-set lookup and the spill behaviour
//
// A write set needs lookup (read-your-own-writes, and write-after-write
// coalescing), but transactional write sets are almost always a handful
// of entries: a list update writes 1-2 locations, a skiplist tower
// O(log n). WriteSet therefore starts as a plain slice with linear-scan
// Find, which beats a map both in time and in allocation (the seed
// allocated a map per writing transaction). Only when a set grows past
// spillAt (16) entries — large composed transactions, bulk operations —
// does Append lazily build a map index over the existing entries; from
// then on Find is O(1) and the index is maintained incrementally. The
// entry slice remains the source of truth and keeps insertion order,
// which the commit protocols rely on.
//
// # Pooled reuse
//
// Sets are designed to be embedded in pooled transaction frames
// (stm.Thread.EngineScratch) and Reset between attempts: Reset truncates
// the entry slice and clears — but keeps — the spilled index, so the
// retry path under contention reuses the same storage. This is where the
// bulk of the seed's per-attempt allocations came from.
//
//compose:hotpath
package txset
