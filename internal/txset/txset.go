package txset

import "oestm/internal/mvar"

// Read records a read of w at version Ver; validation requires the version
// to be unchanged (or the location to be locked by the reading thread at
// commit time).
type Read struct {
	W   *mvar.Word
	Ver uint64
}

// Write is a buffered (or, for eager engines, applied-under-lock) update.
// Old holds the pre-lock word once the location's write lock has been
// acquired, for revert on validation failure and for validating reads of
// self-locked locations.
type Write struct {
	W   *mvar.Word
	Val mvar.Raw
	Old uint64
}

// spillAt is the write-set size past which a map index is built. Below it,
// lookups scan the entry slice linearly — transactional write sets are
// almost always a handful of entries (a list update writes 1-2 locations,
// a skiplist tower O(log n)), and a linear scan over a flat slice beats a
// map both in time and in allocation (the seed allocated a map per
// writing transaction).
const spillAt = 16

// WriteSet is an ordered write set with O(1)-ish lookup: linear scan while
// small, lazily spilling to a map index when it grows. The zero value is
// ready to use.
type WriteSet struct {
	entries []Write
	index   map[*mvar.Word]int // nil until the set spills
}

// Len returns the number of buffered writes.
func (ws *WriteSet) Len() int { return len(ws.entries) }

// Entries exposes the backing slice (in insertion order) for the commit
// protocol. Callers may mutate entries in place but must not grow it.
func (ws *WriteSet) Entries() []Write { return ws.entries }

// At returns a pointer to the i-th entry.
func (ws *WriteSet) At(i int) *Write { return &ws.entries[i] }

// Find returns the index of the entry for w, or -1.
//
//compose:noalloc
func (ws *WriteSet) Find(w *mvar.Word) int {
	if ws.index != nil {
		if i, ok := ws.index[w]; ok {
			return i
		}
		return -1
	}
	for i := range ws.entries {
		if ws.entries[i].W == w {
			return i
		}
	}
	return -1
}

// Append adds a new entry (the caller has established it is absent) and
// returns its index.
func (ws *WriteSet) Append(e Write) int {
	i := len(ws.entries)
	ws.entries = append(ws.entries, e)
	if ws.index != nil {
		ws.index[e.W] = i
	} else if len(ws.entries) > spillAt {
		ws.spill()
	}
	return i
}

// spill builds the map index once the set outgrows linear scanning. It is
// kept out of Append's inlined body (go:noinline) so the engines'
// writeWord hot paths carry no allocation site: spilling happens at most
// once per large transaction.
//
//go:noinline
func (ws *WriteSet) spill() {
	ws.index = make(map[*mvar.Word]int, 2*spillAt)
	for j := range ws.entries {
		ws.index[ws.entries[j].W] = j
	}
}

// Reset empties the set, keeping the entry capacity and (cleared) index so
// the next transaction on this frame does not allocate.
//
//compose:noalloc
func (ws *WriteSet) Reset() {
	ws.entries = ws.entries[:0]
	if ws.index != nil {
		clear(ws.index)
	}
}
