package specexec

import "sync"

// BaseTxn is the Version.Txn sentinel of a base read: the value came
// from the committed store, below every transaction in the batch.
const BaseTxn = int32(-1)

// Version identifies one speculative write: the batch index of the
// transaction that produced it and the incarnation (attempt number)
// it was produced in. Validation compares versions exactly — a
// re-execution bumps the incarnation, so stale readers fail even when
// the re-executed transaction wrote the same key again.
type Version struct {
	Txn int32
	Inc int32
}

// ReadDesc is one recorded read: the key, the anchoring version
// observed (the first absolute write below the reader, Txn == BaseTxn
// for a committed-state read), and the summed delta writes layered
// between that anchor and the reader. Deltas are validated by sum and
// count, not by version: a delta transaction's re-execution republishes
// the same blind delta under a new incarnation, and a reader that only
// ever saw the sum has observed nothing that changed — which is exactly
// why same-key adds never invalidate each other or their readers.
type ReadDesc struct {
	Key      int64
	Ver      Version
	DeltaSum int64
	DeltaCnt int32
}

// WriteDesc is one write of a transaction's write set: a put of Val
// under Key, a removal when Remove is set, or — when Delta is set — a
// blind commutative add of Val to whatever lies below (creating the key
// from zero when nothing does).
type WriteDesc struct {
	Key    int64
	Val    int64
	Remove bool
	Delta  bool
}

// read outcomes of the multi-version map.
const (
	mvMiss     = iota // no write below the reader: fall through to base
	mvHit             // a committed-attempt write; entry returned
	mvEstimate        // the write below is an ESTIMATE marker: dependency miss
)

// verEntry is one transaction's current write of a key: its value (or
// removal, or blind delta), the incarnation that produced it, and the
// estimate flag a failed validation sets so higher readers block on the
// re-execution instead of consuming a doomed value.
type verEntry struct {
	txn      int32
	inc      int32
	val      int64
	remove   bool
	delta    bool
	estimate bool
}

// verList is one key's per-batch version list, sorted by txn ascending.
// Lists are pooled per stripe and reused across batches.
type verList struct {
	entries []verEntry
}

// stripe is one lock stripe of the map: the key buckets plus the
// stripe's verList free pool (reset moves every list there, so the
// steady state allocates nothing).
type stripe struct {
	mu   sync.Mutex
	m    map[int64]*verList
	free []*verList
}

// mvStripes is the stripe count (power of two). Sized well above any
// plausible worker count so stripe collisions stay rare.
const mvStripes = 128

// stripeMix is the Fibonacci hashing multiplier (2^64/φ), the same
// spreader the store uses for shards.
const stripeMix = 0x9e3779b97f4a7c15

// mvMap is the batch's multi-version value map: per-key version lists
// behind striped locks. It lives for one batch at a time; reset clears
// it without releasing the buckets or the lists.
type mvMap struct {
	stripes [mvStripes]stripe
}

func (m *mvMap) init() {
	for i := range m.stripes {
		m.stripes[i].m = make(map[int64]*verList)
	}
}

//compose:noalloc
func (m *mvMap) stripeOf(key int64) *stripe {
	return &m.stripes[(uint64(key)*stripeMix)>>(64-7)]
}

// read walks key's versions below before, from the highest down,
// combining blind delta entries until the first absolute write: it
// returns that anchoring entry (mvHit) or mvMiss when only deltas (or
// nothing) lie below, together with the sum and count of the deltas
// crossed. Any estimate on the way — delta or anchor — is a dependency
// miss: the chain's value is not yet decided.
//
//compose:noalloc
func (m *mvMap) read(key int64, before int32) (e verEntry, dsum int64, dcnt int32, status int) {
	s := m.stripeOf(key)
	s.mu.Lock()
	l := s.m[key]
	if l != nil {
		for i := len(l.entries) - 1; i >= 0; i-- {
			cur := &l.entries[i]
			if cur.txn >= before {
				continue
			}
			if cur.estimate {
				s.mu.Unlock()
				return verEntry{}, 0, 0, mvEstimate
			}
			if cur.delta {
				dsum += cur.val
				dcnt++
				continue
			}
			e = *cur
			s.mu.Unlock()
			return e, dsum, dcnt, mvHit
		}
	}
	s.mu.Unlock()
	return verEntry{}, dsum, dcnt, mvMiss
}

// write publishes txn's write of key (replacing the transaction's
// previous entry, clearing any estimate marker on it).
func (m *mvMap) write(key int64, txn, inc int32, val int64, remove, delta bool) {
	s := m.stripeOf(key)
	s.mu.Lock()
	l := s.m[key]
	if l == nil {
		if n := len(s.free); n > 0 {
			l = s.free[n-1]
			s.free = s.free[:n-1]
		} else {
			l = &verList{}
		}
		s.m[key] = l
	}
	at := len(l.entries)
	for i := range l.entries {
		if l.entries[i].txn == txn {
			l.entries[i] = verEntry{txn: txn, inc: inc, val: val, remove: remove, delta: delta}
			s.mu.Unlock()
			return
		}
		if l.entries[i].txn > txn {
			at = i
			break
		}
	}
	l.entries = append(l.entries, verEntry{})
	copy(l.entries[at+1:], l.entries[at:])
	l.entries[at] = verEntry{txn: txn, inc: inc, val: val, remove: remove, delta: delta}
	s.mu.Unlock()
}

// markEstimate flags txn's write of key as an ESTIMATE: readers above
// dependency-miss on it until the re-execution republishes.
//
//compose:noalloc
func (m *mvMap) markEstimate(key int64, txn int32) {
	s := m.stripeOf(key)
	s.mu.Lock()
	if l := s.m[key]; l != nil {
		for i := range l.entries {
			if l.entries[i].txn == txn {
				l.entries[i].estimate = true
				break
			}
		}
	}
	s.mu.Unlock()
}

// drop removes txn's entry for key entirely — a re-execution that no
// longer writes the key retracts the stale version.
//
//compose:noalloc
func (m *mvMap) drop(key int64, txn int32) {
	s := m.stripeOf(key)
	s.mu.Lock()
	if l := s.m[key]; l != nil {
		for i := range l.entries {
			if l.entries[i].txn == txn {
				l.entries = append(l.entries[:i], l.entries[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
}

// reset clears the map for the next batch, keeping the buckets and
// pooling the version lists so the steady state allocates nothing.
func (m *mvMap) reset() {
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		for k, l := range s.m {
			l.entries = l.entries[:0]
			s.free = append(s.free, l)
			delete(s.m, k)
		}
		s.mu.Unlock()
	}
}
