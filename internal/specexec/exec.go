package specexec

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Txn is one transaction of a batch. Speculate runs the transaction's
// logic against the view; it may be invoked several times (once per
// incarnation) and must be deterministic given its reads: route every
// key access through the view, derive every output only from view
// reads, and keep no side effects outside the receiver's own fields
// (which a later attempt simply overwrites). When a read hits an
// unresolved dependency the view returns zero values and voids the
// attempt — outputs computed from them are discarded with it.
type Txn interface {
	Speculate(v *View)
}

// Base is a committed-state reader. One is built per worker slot
// (Config.NewBase); the scheduler guarantees base reads never run
// concurrently with commit application, so a snapshot-free point
// reader is sufficient.
type Base interface {
	ReadBase(key int64) (int64, bool)
}

// Committer applies a validated batch in batch order. The call
// sequence per batch is: Begin(n); Stage(i, writes) for i = 0..n-1 in
// order; Jobs(); RunJob for each job (possibly in parallel, each job
// exactly once, worker slots in [0, Workers]); Finish. Stage's writes
// slice is only valid until Finish returns. Jobs must be independent —
// the store groups by shard — and each job must apply its staged
// effects in staged order, which is batch order.
type Committer interface {
	Begin(n int)
	Stage(i int, writes []WriteDesc)
	Jobs() int
	RunJob(worker, job int)
	Finish()
}

// Config parameterises an Executor.
type Config struct {
	// Workers is the speculation worker-pool size (0 = 1). The
	// dispatcher participates in every phase too, and NewBase is
	// called with slots 0..Workers inclusive — slot Workers is the
	// dispatcher's.
	Workers int
	// MaxBatch caps how many queued transactions one batch drains
	// (0 = DefaultMaxBatch).
	MaxBatch int
	// NewBase builds the committed-state reader of worker slot w,
	// w in [0, Workers].
	NewBase func(w int) Base
	// Committer applies validated write sets (required).
	Committer Committer
	// Done is invoked for every transaction of a batch, in batch
	// order, after the batch committed (and, with a durable
	// committer, after Finish made it durable). It runs on the
	// dispatcher goroutine — keep it small (the server just counts
	// and wakes the owning connection).
	Done func(t Txn)
	// AfterBatch, when non-nil, runs on the dispatcher after each
	// batch's Done callbacks — the server snapshots worker-thread
	// telemetry there.
	AfterBatch func()
}

// DefaultMaxBatch bounds one batch when Config.MaxBatch is zero.
const DefaultMaxBatch = 256

// Stats is the executor's cumulative speculation telemetry.
type Stats struct {
	// Batches is the number of batches committed.
	Batches uint64
	// Execs counts Speculate attempts (first executions included).
	Execs uint64
	// Reexecs counts attempts beyond a transaction's first — the
	// re-execution cost of speculation (dependency misses and
	// validation failures both land here when they re-run).
	Reexecs uint64
	// ValidationFails counts completed attempts whose read set failed
	// validation against lower-indexed writes.
	ValidationFails uint64
}

// phase kinds.
const (
	phaseExec = iota
	phaseValidate
	phaseCommit
)

// phase is the worker pool's current parallel phase: a work list
// consumed through a shared atomic cursor. One phase struct is reused;
// each phase is a full barrier over the pool (remaining counts
// workers, not items), so no worker can still be draining a stale
// cursor when the dispatcher rewrites the struct for the next phase.
type phase struct {
	kind      int
	items     []int32
	next      atomic.Int32
	remaining atomic.Int32 // pool workers yet to finish the phase
}

// slot is one batch index's scheduling state.
type slot struct {
	txn    Txn
	inc    int32       // incarnation of the current/last attempt
	dep    bool        // last attempt hit an ESTIMATE (attempt void)
	valid  bool        // last validation verdict
	reads  []ReadDesc  // read set of the last completed attempt
	writes []WriteDesc // write set being built by the running attempt
	pub    []WriteDesc // published write set (last completed attempt)
	hasPub bool
}

// View is the layered read/write surface a Speculate attempt sees.
// Views are per-worker and reused; all methods must be called from the
// attempt's goroutine only.
type View struct {
	ex   *Executor
	base Base
	s    *slot
	idx  int32
	dep  bool
	solo bool // single-transaction batch: bypass the mv map entirely
}

// Read returns the value under key and whether it is present, layering
// own writes over lower transactions' published writes over the
// committed base, with blind deltas at every layer combining into the
// first absolute value below them (a delta chain with no absolute below
// creates the key from zero). After an unresolved dependency (Aborted)
// it returns zeros.
//
//compose:noalloc
func (v *View) Read(key int64) (int64, bool) {
	if v.dep {
		return 0, false
	}
	// Own writes: trailing deltas sum onto the own absolute write below
	// them, or fall through to the layers beneath.
	var ownSum int64
	var ownCnt int32
	w := v.s.writes
	for i := len(w) - 1; i >= 0; i-- {
		if w[i].Key != key {
			continue
		}
		if w[i].Delta {
			ownSum += w[i].Val
			ownCnt++
			continue
		}
		if w[i].Remove {
			return ownSum, ownCnt > 0
		}
		return w[i].Val + ownSum, true
	}
	if !v.solo {
		e, dsum, dcnt, status := v.ex.mv.read(key, v.idx)
		switch status {
		case mvEstimate:
			v.dep = true
			return 0, false
		case mvHit:
			v.s.reads = append(v.s.reads, ReadDesc{Key: key,
				Ver: Version{Txn: e.txn, Inc: e.inc}, DeltaSum: dsum, DeltaCnt: dcnt})
			if e.remove {
				return dsum + ownSum, dcnt+ownCnt > 0
			}
			return e.val + dsum + ownSum, true
		}
		val, ok := v.base.ReadBase(key)
		v.s.reads = append(v.s.reads, ReadDesc{Key: key,
			Ver: Version{Txn: BaseTxn}, DeltaSum: dsum, DeltaCnt: dcnt})
		return val + dsum + ownSum, ok || dcnt+ownCnt > 0
	}
	val, ok := v.base.ReadBase(key)
	return val + ownSum, ok || ownCnt > 0
}

// Write records a put of val under key in the attempt's write set.
//
//compose:noalloc
func (v *View) Write(key, val int64) {
	v.s.writes = append(v.s.writes, WriteDesc{Key: key, Val: val})
}

// Add records a blind commutative delta in the attempt's write set: no
// read, no version observed, so concurrent adds to the same key can
// never invalidate each other.
//
//compose:noalloc
func (v *View) Add(key, delta int64) {
	v.s.writes = append(v.s.writes, WriteDesc{Key: key, Val: delta, Delta: true})
}

// Delete records a removal of key in the attempt's write set.
//
//compose:noalloc
func (v *View) Delete(key int64) {
	v.s.writes = append(v.s.writes, WriteDesc{Key: key, Remove: true})
}

// Aborted reports whether the attempt hit an unresolved dependency;
// loops over many keys can early-out on it.
func (v *View) Aborted() bool { return v.dep }

// Executor runs batches. Create with New, start with Start, feed with
// Submit/SubmitAll, stop with Close.
type Executor struct {
	cfg Config
	mv  mvMap

	qmu     sync.Mutex
	qcond   *sync.Cond
	pending []Txn
	closed  bool

	pmu     sync.Mutex
	pcond   *sync.Cond
	pgen    uint64
	pclosed bool
	ph      phase
	doneCh  chan struct{}

	batch    []Txn
	slots    []slot
	views    []View
	bases    []Base
	allItems []int32 // identity list 0..len-1, grown monotonically
	exeItems []int32
	jobItems []int32 // identity list for commit jobs

	batches atomic.Uint64
	execs   atomic.Uint64
	reexecs atomic.Uint64
	vfails  atomic.Uint64

	dispatchDone chan struct{}
	wg           sync.WaitGroup
}

// New validates cfg and builds an executor (not running yet).
func New(cfg Config) (*Executor, error) {
	if cfg.NewBase == nil || cfg.Committer == nil {
		return nil, fmt.Errorf("specexec: Config.NewBase and Config.Committer are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	e := &Executor{cfg: cfg}
	e.qcond = sync.NewCond(&e.qmu)
	e.pcond = sync.NewCond(&e.pmu)
	e.doneCh = make(chan struct{}, 1)
	e.dispatchDone = make(chan struct{})
	e.mv.init()
	e.views = make([]View, cfg.Workers+1)
	e.bases = make([]Base, cfg.Workers+1)
	for w := 0; w <= cfg.Workers; w++ {
		e.bases[w] = cfg.NewBase(w)
	}
	return e, nil
}

// Start launches the worker pool and the dispatcher.
func (e *Executor) Start() {
	for w := 0; w < e.cfg.Workers; w++ {
		e.wg.Add(1)
		go e.worker(w)
	}
	go e.dispatch()
}

// Close drains and stops the executor: every transaction submitted
// before Close completes (its Done fires), then the dispatcher and the
// workers exit. Submit must not be called after (or concurrently with)
// Close.
func (e *Executor) Close() {
	e.qmu.Lock()
	e.closed = true
	e.qmu.Unlock()
	e.qcond.Broadcast()
	<-e.dispatchDone
	e.pmu.Lock()
	e.pclosed = true
	e.pmu.Unlock()
	e.pcond.Broadcast()
	e.wg.Wait()
}

// Stats snapshots the cumulative speculation counters.
func (e *Executor) Stats() Stats {
	return Stats{
		Batches:         e.batches.Load(),
		Execs:           e.execs.Load(),
		Reexecs:         e.reexecs.Load(),
		ValidationFails: e.vfails.Load(),
	}
}

// Submit queues one transaction.
func (e *Executor) Submit(t Txn) {
	e.qmu.Lock()
	e.pending = append(e.pending, t)
	e.qmu.Unlock()
	e.qcond.Signal()
}

// SubmitAll queues a burst under one lock acquisition — the server
// submits a connection's whole pipelined burst at once, which is also
// what makes the burst land in one batch.
func (e *Executor) SubmitAll(ts []Txn) {
	if len(ts) == 0 {
		return
	}
	e.qmu.Lock()
	e.pending = append(e.pending, ts...)
	e.qmu.Unlock()
	e.qcond.Signal()
}

// dispatch is the batch loop: drain the queue (up to MaxBatch), run
// the batch, repeat until closed and empty.
func (e *Executor) dispatch() {
	defer close(e.dispatchDone)
	for {
		e.qmu.Lock()
		for len(e.pending) == 0 && !e.closed {
			e.qcond.Wait()
		}
		if len(e.pending) == 0 {
			e.qmu.Unlock()
			return
		}
		n := len(e.pending)
		if n > e.cfg.MaxBatch {
			n = e.cfg.MaxBatch
		}
		e.batch = append(e.batch[:0], e.pending[:n]...)
		rest := copy(e.pending, e.pending[n:])
		for i := rest; i < len(e.pending); i++ {
			e.pending[i] = nil // release Txn references
		}
		e.pending = e.pending[:rest]
		e.qmu.Unlock()
		e.runBatch(e.batch)
		for i := range e.batch {
			e.batch[i] = nil
		}
	}
}

// worker is one pool goroutine: wait for a phase generation, consume
// items through the shared cursor, check out of the phase barrier.
func (e *Executor) worker(w int) {
	defer e.wg.Done()
	var gen uint64
	for {
		e.pmu.Lock()
		for e.pgen == gen && !e.pclosed {
			e.pcond.Wait()
		}
		if e.pclosed {
			e.pmu.Unlock()
			return
		}
		gen = e.pgen
		kind := e.ph.kind
		items := e.ph.items
		e.pmu.Unlock()
		e.consume(w, kind, items)
		if e.ph.remaining.Add(-1) == 0 {
			e.doneCh <- struct{}{}
		}
	}
}

// consume drains the phase's work list from worker slot w.
func (e *Executor) consume(w, kind int, items []int32) {
	for {
		i := int(e.ph.next.Add(1)) - 1
		if i >= len(items) {
			return
		}
		switch kind {
		case phaseExec:
			e.execOne(w, items[i])
		case phaseValidate:
			e.validateOne(items[i])
		case phaseCommit:
			e.cfg.Committer.RunJob(w, int(items[i]))
		}
	}
}

// runPhase executes one parallel phase over items and blocks until
// every pool worker checked out of it. The barrier counts workers,
// not items, so the cursor is exhausted — every item processed — and
// no worker can be left holding the shared phase struct when the next
// phase rewrites it. Single-item phases and single-worker pools run
// inline on the dispatcher (worker slot Workers) without waking the
// pool.
func (e *Executor) runPhase(kind int, items []int32) {
	if len(items) == 0 {
		return
	}
	if len(items) == 1 || e.cfg.Workers == 1 {
		w := e.cfg.Workers
		for _, it := range items {
			switch kind {
			case phaseExec:
				e.execOne(w, it)
			case phaseValidate:
				e.validateOne(it)
			case phaseCommit:
				e.cfg.Committer.RunJob(w, int(it))
			}
		}
		return
	}
	e.pmu.Lock()
	e.ph.kind = kind
	e.ph.items = items
	e.ph.next.Store(0)
	e.ph.remaining.Store(int32(e.cfg.Workers))
	e.pgen++
	e.pmu.Unlock()
	e.pcond.Broadcast()
	e.consume(e.cfg.Workers, kind, items) // the dispatcher helps
	<-e.doneCh
}

// identity extends ident (an index-identity list 0,1,2,...) to at
// least n entries and returns it; callers slice [:n].
func identity(ident []int32, n int) []int32 {
	for len(ident) < n {
		ident = append(ident, int32(len(ident)))
	}
	return ident
}

// runBatch speculates, validates and commits one batch.
func (e *Executor) runBatch(batch []Txn) {
	n := len(batch)
	if cap(e.slots) < n {
		s := make([]slot, n)
		copy(s, e.slots[:cap(e.slots)])
		e.slots = s
	}
	e.slots = e.slots[:n]
	e.allItems = identity(e.allItems, n)
	for i := 0; i < n; i++ {
		s := &e.slots[i]
		s.txn = batch[i]
		s.inc = 0
		s.dep = false
		s.valid = false
		s.hasPub = false
		s.reads = s.reads[:0]
		s.writes = s.writes[:0]
		s.pub = s.pub[:0]
	}

	if n == 1 {
		e.runSolo()
	} else {
		e.runSpec(n)
	}

	c := e.cfg.Committer
	c.Begin(n)
	for i := 0; i < n; i++ {
		c.Stage(i, e.slots[i].pub)
	}
	if jobs := c.Jobs(); jobs > 0 {
		e.jobItems = identity(e.jobItems, jobs)
		e.runPhase(phaseCommit, e.jobItems[:jobs])
	}
	c.Finish()
	e.batches.Add(1)
	for i := 0; i < n; i++ {
		e.slots[i].txn = nil
		if e.cfg.Done != nil {
			e.cfg.Done(batch[i])
		}
	}
	if e.cfg.AfterBatch != nil {
		e.cfg.AfterBatch()
	}
}

// runSolo executes a single-transaction batch inline: no mv map, no
// validation (nothing can invalidate it), write set committed as-is.
func (e *Executor) runSolo() {
	s := &e.slots[0]
	v := &e.views[e.cfg.Workers]
	*v = View{ex: e, base: e.bases[e.cfg.Workers], s: s, idx: 0, solo: true}
	s.txn.Speculate(v)
	e.execs.Add(1)
	s.pub, s.writes = s.writes, s.pub[:0]
}

// runSpec runs the execute/validate rounds of an n-transaction batch
// until a validation round passes cleanly.
func (e *Executor) runSpec(n int) {
	e.mv.reset()
	e.exeItems = append(e.exeItems[:0], e.allItems[:n]...)
	round := 0
	for len(e.exeItems) > 0 {
		e.runPhase(phaseExec, e.exeItems)
		e.execs.Add(uint64(len(e.exeItems)))
		if round > 0 {
			e.reexecs.Add(uint64(len(e.exeItems)))
		}
		e.runPhase(phaseValidate, e.allItems[:n])
		e.exeItems = e.exeItems[:0]
		var vfails uint64
		for i := 0; i < n; i++ {
			s := &e.slots[i]
			if s.valid {
				continue
			}
			if !s.dep {
				vfails++
			}
			// Leave ESTIMATE markers on every published write so
			// higher readers dependency-miss instead of consuming a
			// doomed value while the re-execution is in flight.
			for _, w := range s.pub {
				e.mv.markEstimate(w.Key, int32(i))
			}
			s.inc++
			e.exeItems = append(e.exeItems, int32(i))
		}
		e.vfails.Add(vfails)
		round++
	}
}

// execOne runs one Speculate attempt on worker slot w and publishes
// its write set (or leaves the previous publication marked ESTIMATE on
// a dependency miss).
func (e *Executor) execOne(w int, idx int32) {
	s := &e.slots[idx]
	s.dep = false
	s.reads = s.reads[:0]
	s.writes = s.writes[:0]
	v := &e.views[w]
	*v = View{ex: e, base: e.bases[w], s: s, idx: idx}
	s.txn.Speculate(v)
	if v.dep {
		s.dep = true
		return
	}
	// Publish each key's FINAL portrait only. An attempt that writes a
	// key twice must never expose an intermediate value: it would carry
	// the same (txn, incarnation) version as the final one, so a reader
	// that caught it would pass validation with a value serial execution
	// can never observe. With deltas in the mix the portrait is the
	// composition of the key's write sequence: trailing deltas fold onto
	// the last absolute write (an absolute entry), deltas over a removal
	// re-create the key absolutely, and an all-delta sequence publishes
	// one summed delta entry — keeping the entry blind, so readers above
	// still combine it with whatever lower transactions decide.
	for i := len(s.writes) - 1; i >= 0; i-- {
		wr := s.writes[i]
		if containsKey(s.writes[i+1:], wr.Key) {
			continue
		}
		var sum int64
		var cnt int32
		published := false
		for j := i; j >= 0; j-- {
			ww := s.writes[j]
			if ww.Key != wr.Key {
				continue
			}
			if ww.Delta {
				sum += ww.Val
				cnt++
				continue
			}
			switch {
			case !ww.Remove:
				e.mv.write(wr.Key, idx, s.inc, ww.Val+sum, false, false)
			case cnt > 0:
				e.mv.write(wr.Key, idx, s.inc, sum, false, false)
			default:
				e.mv.write(wr.Key, idx, s.inc, 0, true, false)
			}
			published = true
			break
		}
		if !published {
			e.mv.write(wr.Key, idx, s.inc, sum, false, true)
		}
	}
	if s.hasPub {
		// Retract stale versions the new attempt no longer writes.
		for _, old := range s.pub {
			if !containsKey(s.writes, old.Key) {
				e.mv.drop(old.Key, idx)
			}
		}
	}
	s.pub, s.writes = s.writes, s.pub[:0]
	s.hasPub = true
}

//compose:noalloc
func containsKey(ws []WriteDesc, key int64) bool {
	for i := range ws {
		if ws[i].Key == key {
			return true
		}
	}
	return false
}

// validateOne re-reads slot idx's read descriptors at its index: valid
// iff every descriptor observes the identical anchoring version — same
// (txn, incarnation) for map hits, still a base read for base reads,
// never an ESTIMATE — and the identical delta chain above it, compared
// by sum and count rather than by version. Delta incarnations are
// deliberately invisible here: a re-executed add republishes the same
// blind delta, the sums match, and the reader stays valid — delta
// traffic on a hot key can never fail a reader's validation unless the
// observable value actually changed. Dependency-missed attempts are
// invalid outright.
//
//compose:noalloc
func (e *Executor) validateOne(idx int32) {
	s := &e.slots[idx]
	if s.dep {
		s.valid = false
		return
	}
	for i := range s.reads {
		r := &s.reads[i]
		cur, dsum, dcnt, status := e.mv.read(r.Key, idx)
		if dsum != r.DeltaSum || dcnt != r.DeltaCnt {
			s.valid = false
			return
		}
		switch status {
		case mvMiss:
			if r.Ver.Txn != BaseTxn {
				s.valid = false
				return
			}
		case mvEstimate:
			s.valid = false
			return
		default:
			if r.Ver.Txn != cur.txn || r.Ver.Inc != cur.inc {
				s.valid = false
				return
			}
		}
	}
	s.valid = true
}
