package specexec

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// top is one step of a test transaction's op program.
type top struct {
	kind int // 0 read, 1 write, 2 delete, 3 read-modify-write (write key = read+val)
	key  int64
	val  int64
}

const (
	opRead = iota
	opWrite
	opDelete
	opRMW
	opAdd // blind commutative delta: View.Add, no read
)

// testTxn replays an op program against the view, recording what the
// last (validated) attempt observed.
type testTxn struct {
	ops   []top
	got   []int64
	gotOK []bool
}

func (t *testTxn) Speculate(v *View) {
	t.got = t.got[:0]
	t.gotOK = t.gotOK[:0]
	for _, op := range t.ops {
		switch op.kind {
		case opRead:
			val, ok := v.Read(op.key)
			t.got = append(t.got, val)
			t.gotOK = append(t.gotOK, ok)
		case opWrite:
			v.Write(op.key, op.val)
		case opDelete:
			v.Delete(op.key)
		case opRMW:
			val, ok := v.Read(op.key)
			t.got = append(t.got, val)
			t.gotOK = append(t.gotOK, ok)
			v.Write(op.key, val+op.val)
		case opAdd:
			v.Add(op.key, op.val)
		}
		if v.Aborted() {
			return
		}
	}
}

// applySerial runs t's program against model, recording the expected
// observations — the serial reference the speculative run must match.
func (t *testTxn) applySerial(model map[int64]int64) (got []int64, gotOK []bool) {
	for _, op := range t.ops {
		switch op.kind {
		case opRead:
			val, ok := model[op.key]
			got = append(got, val)
			gotOK = append(gotOK, ok)
		case opWrite:
			model[op.key] = op.val
		case opDelete:
			delete(model, op.key)
		case opRMW:
			val, ok := model[op.key]
			got = append(got, val)
			gotOK = append(gotOK, ok)
			model[op.key] = val + op.val
		case opAdd:
			model[op.key] += op.val
		}
	}
	return got, gotOK
}

// shardedState is the test harness's committed state: per-shard maps so
// commit jobs genuinely run in parallel, plus committer bookkeeping.
type shardedState struct {
	shards []map[int64]int64
	staged [][]WriteDesc
	n      int
	mu     sync.Mutex
	begins int
	finis  int
}

func newShardedState(shards int) *shardedState {
	s := &shardedState{shards: make([]map[int64]int64, shards)}
	for i := range s.shards {
		s.shards[i] = make(map[int64]int64)
	}
	return s
}

func (s *shardedState) shardOf(key int64) int { return int(uint64(key) % uint64(len(s.shards))) }

func (s *shardedState) ReadBase(key int64) (int64, bool) {
	v, ok := s.shards[s.shardOf(key)][key]
	return v, ok
}

func (s *shardedState) Begin(n int) {
	s.n = n
	if cap(s.staged) < n {
		s.staged = make([][]WriteDesc, n)
	}
	s.staged = s.staged[:n]
	s.mu.Lock()
	s.begins++
	s.mu.Unlock()
}

func (s *shardedState) Stage(i int, writes []WriteDesc) { s.staged[i] = writes }

func (s *shardedState) Jobs() int { return len(s.shards) }

func (s *shardedState) RunJob(worker, job int) {
	m := s.shards[job]
	for _, ws := range s.staged[:s.n] {
		for _, w := range ws {
			if s.shardOf(w.Key) != job {
				continue
			}
			switch {
			case w.Delta:
				m[w.Key] += w.Val
			case w.Remove:
				delete(m, w.Key)
			default:
				m[w.Key] = w.Val
			}
		}
	}
}

func (s *shardedState) Finish() {
	s.mu.Lock()
	s.finis++
	s.mu.Unlock()
}

// runBatches drives batches through an executor built over st and waits
// for every transaction to complete, returning the Done order.
func runBatches(t *testing.T, st *shardedState, workers, maxBatch int, batches [][]Txn) []Txn {
	t.Helper()
	var (
		mu   sync.Mutex
		done []Txn
		wg   sync.WaitGroup
	)
	ex, err := New(Config{
		Workers:   workers,
		MaxBatch:  maxBatch,
		NewBase:   func(int) Base { return st },
		Committer: st,
		Done: func(tx Txn) {
			mu.Lock()
			done = append(done, tx)
			mu.Unlock()
			wg.Done()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	for _, b := range batches {
		wg.Add(len(b))
		ex.SubmitAll(b)
	}
	wg.Wait()
	ex.Close()
	return done
}

func TestDependencyChain(t *testing.T) {
	// n transactions each incrementing the same key: a full dependency
	// chain, the worst case for speculation. Serial equivalence demands
	// transaction i observes exactly i.
	const n = 48
	st := newShardedState(4)
	txns := make([]Txn, n)
	for i := range txns {
		txns[i] = &testTxn{ops: []top{{kind: opRMW, key: 7, val: 1}}}
	}
	runBatches(t, st, 4, n, [][]Txn{txns})
	for i, tx := range txns {
		tt := tx.(*testTxn)
		if len(tt.got) != 1 || tt.got[0] != int64(i) {
			t.Fatalf("txn %d observed %v, want [%d]", i, tt.got, i)
		}
		if (i == 0) == tt.gotOK[0] {
			t.Fatalf("txn %d presence = %v", i, tt.gotOK[0])
		}
	}
	if v, _ := st.ReadBase(7); v != n {
		t.Fatalf("final value %d, want %d", v, n)
	}
}

func TestSoloBatchAndCounters(t *testing.T) {
	st := newShardedState(2)
	tx := &testTxn{ops: []top{{kind: opWrite, key: 3, val: 42}, {kind: opRead, key: 3}}}
	ex, err := New(Config{
		Workers:   2,
		NewBase:   func(int) Base { return st },
		Committer: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	ex.Submit(tx)
	ex.Close()
	if v, ok := st.ReadBase(3); !ok || v != 42 {
		t.Fatalf("committed %d,%v want 42,true", v, ok)
	}
	if tx.got[0] != 42 || !tx.gotOK[0] {
		t.Fatalf("own-write read %d,%v", tx.got[0], tx.gotOK[0])
	}
	s := ex.Stats()
	if s.Batches != 1 || s.Execs != 1 || s.Reexecs != 0 || s.ValidationFails != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// orderedWriter's first attempt waits until the reader has performed
// its base read, so the reader's first attempt is guaranteed stale.
type orderedWriter struct {
	readDone chan struct{}
	attempts int
}

func (w *orderedWriter) Speculate(v *View) {
	w.attempts++
	if w.attempts == 1 {
		<-w.readDone
	}
	v.Write(5, 99)
}

// orderedReader reads key 5 and signals after its first (stale) read.
type orderedReader struct {
	readDone chan struct{}
	attempts int
	got      int64
	gotOK    bool
}

func (r *orderedReader) Speculate(v *View) {
	r.attempts++
	r.got, r.gotOK = v.Read(5)
	if r.attempts == 1 {
		close(r.readDone)
	}
}

// TestValidationFailureReexecutes forces the classic speculation miss
// deterministically: the reader (index 1) base-reads key 5 before the
// writer (index 0) publishes, so round-0 validation must fail the
// reader and re-execute it against the published write.
func TestValidationFailureReexecutes(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	st := newShardedState(2)
	ch := make(chan struct{})
	w := &orderedWriter{readDone: ch}
	r := &orderedReader{readDone: ch}
	var wg sync.WaitGroup
	wg.Add(2)
	ex, err := New(Config{
		Workers:   2,
		MaxBatch:  2,
		NewBase:   func(int) Base { return st },
		Committer: st,
		Done:      func(Txn) { wg.Done() },
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	ex.SubmitAll([]Txn{w, r})
	wg.Wait()
	ex.Close()
	if r.got != 99 || !r.gotOK {
		t.Fatalf("reader's validated attempt observed %d,%v want 99,true", r.got, r.gotOK)
	}
	if r.attempts < 2 {
		t.Fatalf("reader ran %d attempts, want ≥ 2", r.attempts)
	}
	s := ex.Stats()
	if s.ValidationFails == 0 {
		t.Fatalf("no validation failures recorded: %+v", s)
	}
	if s.Reexecs == 0 {
		t.Fatalf("no re-executions recorded: %+v", s)
	}
	if s.Execs != 2+s.Reexecs {
		t.Fatalf("execs %d != first-runs 2 + reexecs %d", s.Execs, s.Reexecs)
	}
	if v, ok := st.ReadBase(5); !ok || v != 99 {
		t.Fatalf("committed %d,%v want 99,true", v, ok)
	}
}

func TestDoneOrderMatchesSubmitOrder(t *testing.T) {
	const n = 200
	st := newShardedState(4)
	txns := make([]Txn, n)
	for i := range txns {
		txns[i] = &testTxn{ops: []top{{kind: opRMW, key: int64(i % 8), val: 1}}}
	}
	done := runBatches(t, st, 4, 16, [][]Txn{txns})
	if len(done) != n {
		t.Fatalf("done %d txns, want %d", len(done), n)
	}
	for i := range done {
		if done[i] != txns[i] {
			t.Fatalf("done order diverges from submit order at %d", i)
		}
	}
}

// TestSeededRandomEquivalence is the core equivalence check: seeded
// random batches over a small key space (heavy conflicts), speculative
// observations and committed end state must match the serial reference
// exactly.
func TestSeededRandomEquivalence(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	for _, seed := range []int64{1, 0x5eed, 0xdecaf, 31337} {
		rng := rand.New(rand.NewSource(seed))
		st := newShardedState(4)
		model := make(map[int64]int64)
		var batches [][]Txn
		var all []*testTxn
		for b := 0; b < 20; b++ {
			n := 1 + rng.Intn(64)
			batch := make([]Txn, n)
			for i := range batch {
				nops := 1 + rng.Intn(5)
				ops := make([]top, nops)
				for j := range ops {
					ops[j] = top{
						kind: rng.Intn(4),
						key:  int64(rng.Intn(16)),
						val:  int64(rng.Intn(100)),
					}
				}
				tt := &testTxn{ops: ops}
				batch[i] = tt
				all = append(all, tt)
			}
			batches = append(batches, batch)
		}
		// Expected observations, in submit order (= batch order).
		wantGot := make([][]int64, len(all))
		wantOK := make([][]bool, len(all))
		for i, tt := range all {
			wantGot[i], wantOK[i] = tt.applySerial(model)
		}

		runBatches(t, st, 6, 64, batches)

		for i, tt := range all {
			if len(tt.got) != len(wantGot[i]) {
				t.Fatalf("seed %#x txn %d: %d observations, want %d", seed, i, len(tt.got), len(wantGot[i]))
			}
			for j := range tt.got {
				if tt.got[j] != wantGot[i][j] || tt.gotOK[j] != wantOK[i][j] {
					t.Fatalf("seed %#x txn %d read %d: got %d,%v want %d,%v",
						seed, i, j, tt.got[j], tt.gotOK[j], wantGot[i][j], wantOK[i][j])
				}
			}
		}
		// Committed end state == model.
		for k, want := range model {
			if got, ok := st.ReadBase(k); !ok || got != want {
				t.Fatalf("seed %#x key %d: committed %d,%v want %d,true", seed, k, got, ok, want)
			}
		}
		for _, m := range st.shards {
			for k, got := range m {
				if want, ok := model[k]; !ok || want != got {
					t.Fatalf("seed %#x key %d: committed %d, model has %d,%v", seed, k, got, want, ok)
				}
			}
		}
	}
}

// TestConcurrentSubmitStress hammers Submit from many goroutines while
// batches run — the -race target for the queue and phase machinery.
func TestConcurrentSubmitStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	st := newShardedState(8)
	var wg sync.WaitGroup
	ex, err := New(Config{
		Workers:   4,
		MaxBatch:  32,
		NewBase:   func(int) Base { return st },
		Committer: st,
		Done:      func(Txn) { wg.Done() },
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	const producers = 8
	const perProducer = 300
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < perProducer; i++ {
				tx := &testTxn{ops: []top{{kind: opRMW, key: int64(rng.Intn(32)), val: 1}}}
				wg.Add(1)
				ex.Submit(tx)
			}
		}(p)
	}
	pwg.Wait()
	wg.Wait()
	ex.Close()
	var total int64
	for _, m := range st.shards {
		for _, v := range m {
			total += v
		}
	}
	if total != producers*perProducer {
		t.Fatalf("increment conservation: sum %d, want %d", total, producers*perProducer)
	}
	if s := ex.Stats(); s.Execs < producers*perProducer {
		t.Fatalf("stats undercount: %+v", s)
	}
}

// TestBlindAddsNeverConflict is the commutativity pin: a whole batch of
// blind adds to ONE key — the workload that makes the RMW dependency
// chain of TestDependencyChain degenerate to n rounds — must commit in
// a single round with zero validation failures and zero re-executions,
// because blind deltas record no reads and their publications are
// invisible to validation.
func TestBlindAddsNeverConflict(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const n = 64
	st := newShardedState(4)
	txns := make([]Txn, n)
	for i := range txns {
		txns[i] = &testTxn{ops: []top{{kind: opAdd, key: 7, val: 1}}}
	}
	var wg sync.WaitGroup
	wg.Add(n)
	ex, err := New(Config{
		Workers:   4,
		MaxBatch:  n,
		NewBase:   func(int) Base { return st },
		Committer: st,
		Done:      func(Txn) { wg.Done() },
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	ex.SubmitAll(txns)
	wg.Wait()
	ex.Close()
	if v, _ := st.ReadBase(7); v != n {
		t.Fatalf("final value %d, want %d", v, n)
	}
	s := ex.Stats()
	if s.ValidationFails != 0 || s.Reexecs != 0 {
		t.Fatalf("blind adds caused speculation misses: %+v", s)
	}
	if s.Execs != n {
		t.Fatalf("execs %d, want exactly %d (one attempt each)", s.Execs, n)
	}
}

// TestDeltaChainObservation pins the read-combining semantics with
// deterministic single-key batches: a reader above a delta chain
// observes the first absolute anchor below it plus the summed deltas,
// deltas over a removal re-create the key, and an all-delta chain
// creates it from zero — including the zero-sum case, where presence
// comes from the delta count, not the value.
func TestDeltaChainObservation(t *testing.T) {
	cases := []struct {
		name   string
		seed   map[int64]int64 // committed state before the batch
		ops    [][]top         // one txn per entry, reader last
		want   int64
		wantOK bool
	}{
		{
			name: "adds over absolute write",
			ops: [][]top{
				{{kind: opWrite, key: 7, val: 10}},
				{{kind: opAdd, key: 7, val: 5}},
				{{kind: opAdd, key: 7, val: -2}},
				{{kind: opRead, key: 7}},
			},
			want: 13, wantOK: true,
		},
		{
			name: "adds over removal re-create",
			seed: map[int64]int64{7: 100},
			ops: [][]top{
				{{kind: opDelete, key: 7}},
				{{kind: opAdd, key: 7, val: 5}},
				{{kind: opRead, key: 7}},
			},
			want: 5, wantOK: true,
		},
		{
			name: "all-delta chain creates from zero",
			ops: [][]top{
				{{kind: opAdd, key: 7, val: 3}},
				{{kind: opRead, key: 7}},
			},
			want: 3, wantOK: true,
		},
		{
			name: "zero-sum chain is still present",
			ops: [][]top{
				{{kind: opAdd, key: 7, val: 5}},
				{{kind: opAdd, key: 7, val: -5}},
				{{kind: opRead, key: 7}},
			},
			want: 0, wantOK: true,
		},
		{
			name: "adds over committed base",
			seed: map[int64]int64{7: 40},
			ops: [][]top{
				{{kind: opAdd, key: 7, val: 2}},
				{{kind: opRead, key: 7}},
			},
			want: 42, wantOK: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := newShardedState(2)
			for k, v := range tc.seed {
				st.shards[st.shardOf(k)][k] = v
			}
			txns := make([]Txn, len(tc.ops))
			for i, ops := range tc.ops {
				txns[i] = &testTxn{ops: ops}
			}
			runBatches(t, st, 2, len(txns), [][]Txn{txns})
			rd := txns[len(txns)-1].(*testTxn)
			if len(rd.got) != 1 || rd.got[0] != tc.want || rd.gotOK[0] != tc.wantOK {
				t.Fatalf("reader observed %v,%v want [%d],[%v]", rd.got, rd.gotOK, tc.want, tc.wantOK)
			}
			// Committed end state must match the serial model too.
			model := make(map[int64]int64)
			for k, v := range tc.seed {
				model[k] = v
			}
			for _, ops := range tc.ops {
				(&testTxn{ops: ops}).applySerial(model)
			}
			if got, ok := st.ReadBase(7); got != model[7] {
				t.Fatalf("committed %d,%v want %d", got, ok, model[7])
			}
		})
	}
}

// TestOwnWriteDeltaLayering checks the own-write walk inside one
// transaction: trailing own deltas fold onto the own absolute below,
// fall through a removal, or layer over lower transactions and base —
// in both solo and speculative batches.
func TestOwnWriteDeltaLayering(t *testing.T) {
	ops := []top{
		{kind: opWrite, key: 1, val: 10},
		{kind: opAdd, key: 1, val: 5},
		{kind: opRead, key: 1}, // 15
		{kind: opDelete, key: 1},
		{kind: opAdd, key: 1, val: 2},
		{kind: opRead, key: 1}, // 2, present (delta over own removal)
		{kind: opAdd, key: 2, val: 7},
		{kind: opRead, key: 2}, // 37: own delta over committed base 30
	}
	wantGot := []int64{15, 2, 37}
	wantOK := []bool{true, true, true}
	run := func(t *testing.T, pad int) *shardedState {
		st := newShardedState(2)
		st.shards[st.shardOf(2)][2] = 30
		txns := []Txn{&testTxn{ops: ops}}
		for i := 0; i < pad; i++ {
			txns = append(txns, &testTxn{ops: []top{{kind: opAdd, key: 9, val: 1}}})
		}
		runBatches(t, st, 2, len(txns), [][]Txn{txns})
		tt := txns[0].(*testTxn)
		for i := range wantGot {
			if tt.got[i] != wantGot[i] || tt.gotOK[i] != wantOK[i] {
				t.Fatalf("read %d: got %d,%v want %d,%v", i, tt.got[i], tt.gotOK[i], wantGot[i], wantOK[i])
			}
		}
		return st
	}
	t.Run("solo", func(t *testing.T) {
		st := run(t, 0)
		if v, ok := st.ReadBase(1); !ok || v != 2 {
			t.Fatalf("committed key 1 = %d,%v want 2,true", v, ok)
		}
	})
	t.Run("speculative", func(t *testing.T) {
		st := run(t, 3)
		if v, ok := st.ReadBase(1); !ok || v != 2 {
			t.Fatalf("committed key 1 = %d,%v want 2,true", v, ok)
		}
		if v, _ := st.ReadBase(9); v != 3 {
			t.Fatalf("committed key 9 = %d want 3", v)
		}
	})
}

// dependentAdder reads key 5 and blind-adds what it read to key 7; it
// signals after its first (stale) read so the test can hold the writer
// of key 5 back until the stale read has happened.
type dependentAdder struct {
	readDone chan struct{}
	attempts int
}

func (d *dependentAdder) Speculate(v *View) {
	d.attempts++
	val, _ := v.Read(5)
	v.Add(7, val)
	if d.attempts == 1 {
		close(d.readDone)
	}
}

// keyReader reads one key, remembering the last validated observation.
type keyReader struct {
	key      int64
	attempts int
	got      int64
	gotOK    bool
}

func (r *keyReader) Speculate(v *View) {
	r.attempts++
	r.got, r.gotOK = v.Read(r.key)
}

// TestDeltaSumChangeInvalidatesReader pins that delta validation is by
// VALUE, not version: the adder's first attempt publishes a stale delta
// of 0 onto key 7 (it read key 5 before the writer published), its
// re-execution republishes a delta of 99 — and the reader of key 7,
// whose recorded chain can never match (sum 99, count 1) on its early
// attempts, must fail the sum/count comparison and re-run until it
// observes 99.
func TestDeltaSumChangeInvalidatesReader(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	st := newShardedState(2)
	ch := make(chan struct{})
	w := &orderedWriter{readDone: ch} // writes key 5 = 99 after the signal
	d := &dependentAdder{readDone: ch}
	r := &keyReader{key: 7}
	var wg sync.WaitGroup
	wg.Add(3)
	ex, err := New(Config{
		Workers:   2,
		MaxBatch:  3,
		NewBase:   func(int) Base { return st },
		Committer: st,
		Done:      func(Txn) { wg.Done() },
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	ex.SubmitAll([]Txn{w, d, r})
	wg.Wait()
	ex.Close()
	if v, ok := st.ReadBase(7); !ok || v != 99 {
		t.Fatalf("key 7 committed %d,%v want 99,true (the re-published delta)", v, ok)
	}
	if r.got != 99 || !r.gotOK {
		t.Fatalf("reader's validated attempt observed %d,%v want 99,true", r.got, r.gotOK)
	}
	if d.attempts < 2 {
		t.Fatalf("adder ran %d attempts, want ≥ 2 (stale read must re-execute)", d.attempts)
	}
	if s := ex.Stats(); s.ValidationFails == 0 {
		t.Fatalf("no validation failures recorded: %+v", s)
	}
}

// TestSeededRandomEquivalenceWithAdds repeats the core equivalence
// check with blind adds in the op mix, so delta chains, re-published
// deltas, portrait composition and delta validation all get exercised
// against the serial reference.
func TestSeededRandomEquivalenceWithAdds(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	for _, seed := range []int64{2, 0xadd5, 0xdadd, 424242} {
		rng := rand.New(rand.NewSource(seed))
		st := newShardedState(4)
		model := make(map[int64]int64)
		var batches [][]Txn
		var all []*testTxn
		for b := 0; b < 20; b++ {
			n := 1 + rng.Intn(64)
			batch := make([]Txn, n)
			for i := range batch {
				nops := 1 + rng.Intn(5)
				ops := make([]top, nops)
				for j := range ops {
					kind := rng.Intn(8)
					if kind > opAdd {
						kind = opAdd // weight adds at 50%: hot-counter shape
					}
					ops[j] = top{
						kind: kind,
						key:  int64(rng.Intn(16)),
						val:  int64(rng.Intn(100)) - 50,
					}
				}
				tt := &testTxn{ops: ops}
				batch[i] = tt
				all = append(all, tt)
			}
			batches = append(batches, batch)
		}
		wantGot := make([][]int64, len(all))
		wantOK := make([][]bool, len(all))
		for i, tt := range all {
			wantGot[i], wantOK[i] = tt.applySerial(model)
		}

		runBatches(t, st, 6, 64, batches)

		for i, tt := range all {
			if len(tt.got) != len(wantGot[i]) {
				t.Fatalf("seed %#x txn %d: %d observations, want %d", seed, i, len(tt.got), len(wantGot[i]))
			}
			for j := range tt.got {
				if tt.got[j] != wantGot[i][j] || tt.gotOK[j] != wantOK[i][j] {
					t.Fatalf("seed %#x txn %d read %d: got %d,%v want %d,%v",
						seed, i, j, tt.got[j], tt.gotOK[j], wantGot[i][j], wantOK[i][j])
				}
			}
		}
		for k, want := range model {
			if got, ok := st.ReadBase(k); !ok || got != want {
				t.Fatalf("seed %#x key %d: committed %d,%v want %d,true", seed, k, got, ok, want)
			}
		}
		for _, m := range st.shards {
			for k, got := range m {
				if want, ok := model[k]; !ok || want != got {
					t.Fatalf("seed %#x key %d: committed %d, model has %d,%v", seed, k, got, want, ok)
				}
			}
		}
	}
}
