// Package specexec is the server's batch-speculative execution engine:
// a Block-STM-style optimistic scheduler that runs a batch of
// transactions in parallel across a bounded worker pool and commits
// them in batch order, so execution parallelism is decoupled from
// connection count (the goroutine-per-connection model caps it there).
//
// # Model
//
// A batch is an ordered slice of Txns. The semantics the scheduler
// guarantees is serial equivalence IN BATCH ORDER: the observable
// reads, writes and committed end state are exactly those of running
// the batch's transactions one after another, index 0 first. The
// parallelism is speculation, never reordering.
//
// Each transaction executes optimistically against a View that layers
// three sources, nearest first: its own write set, the multi-version
// map (the highest write by a LOWER batch index), and the committed
// base state (Config.NewBase). Every read records a descriptor — the
// key and the exact version observed: (txn, incarnation) for a
// multi-version hit, the Base sentinel for a base read. Every write
// goes to the transaction's write set and is published to the
// multi-version map when the attempt completes.
//
// # Scheduler states
//
// A transaction slot moves through attempts, each tagged with an
// incarnation number:
//
//	executing  -> published  (attempt completed; write set visible in the mv map)
//	executing  -> dep-missed (a read hit an ESTIMATE marker; attempt void)
//	published  -> validated  (every read descriptor still observes the same version)
//	published  -> failed     (a lower transaction's republish changed an observed version)
//	failed     -> executing  (incarnation+1, old writes left as ESTIMATE markers)
//
// The scheduler runs rounds: a parallel execute phase over the pending
// set, then a parallel validate phase over the WHOLE batch. The
// validation rule: transaction i is valid iff re-reading each of its
// read descriptors at index i yields the identical version — same
// (txn, incarnation) for map hits, still-a-base-read for base reads,
// and never an ESTIMATE. Failed transactions mark their published
// writes as ESTIMATE (so higher readers dependency-miss instead of
// consuming doomed values), bump their incarnation, and join the next
// round's execute set. The loop terminates because the lowest-indexed
// failed transaction always finalizes in its next round: every version
// below it is settled, so its re-execution can neither dependency-miss
// nor fail validation again — at most n rounds for a batch of n.
//
// # Commit
//
// After a round validates cleanly, write sets are staged into the
// Committer in batch index order and applied per independent job
// (the store groups by shard — disjoint keyspaces, so jobs run on the
// worker pool in parallel while each shard's commit order remains
// batch order, which keeps WAL log order equal to commit order; see
// internal/store's Applier). Done callbacks fire in batch order only
// after Committer.Finish returned, i.e. after group commit made the
// batch durable — acknowledgment ordering is unchanged from the
// connection-serial path.
//
// The package is deliberately storage-agnostic: base reads, commit
// application and completion routing are all injected, so the unit
// tests drive it against a plain map and the server wires it to the
// sharded store, the WAL and the connection goroutines.
//
//compose:hotpath
package specexec
