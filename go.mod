module oestm

go 1.24
