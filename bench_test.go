// Benchmarks regenerating the paper's evaluation (§VII) as testing.B
// targets — one per figure panel — plus ablation benches for the design
// choices called out in DESIGN.md. Parallel benches run at GOMAXPROCS
// workers; use -cpu to sweep thread counts the way the figures do, e.g.
//
//	go test -bench 'Fig6' -cpu 1,2,4,8 -benchmem
//
// Each bench reports ns/op (inverse throughput), abort%, and ops/ms (the
// paper's throughput unit). cmd/compose-bench produces the full
// figure-shaped sweeps.
package oestm_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"oestm/internal/coarse"
	"oestm/internal/core"
	"oestm/internal/harness"
	"oestm/internal/seqset"
	"oestm/internal/stm"
	"oestm/internal/workload"
)

// benchEngines is the paper's line-up for the figure benches.
var benchEngines = []string{"oestm", "lsa", "tl2", "swisstm"}

// benchSTM drives the §VII-A workload through one engine with one worker
// per GOMAXPROCS.
func benchSTM(b *testing.B, eng harness.Engine, structure string, cfg workload.Config) {
	b.Helper()
	tm := eng.New()
	set := harness.NewStructure(structure, cfg)
	filler := stm.NewThread(tm)
	workload.Fill(filler, set, cfg)

	var mu sync.Mutex
	var total stm.Stats
	var tidx atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		th := stm.NewThread(tm)
		gen := workload.NewGen(cfg, int(tidx.Add(1)))
		for pb.Next() {
			workload.Apply(th, set, gen.Next())
		}
		mu.Lock()
		total.Add(th.Stats)
		mu.Unlock()
	})
	b.StopTimer()
	b.ReportMetric(total.AbortRate(), "abort%")
	if ms := b.Elapsed().Seconds() * 1000; ms > 0 {
		b.ReportMetric(float64(b.N)/ms, "ops/ms")
	}
}

// benchSeq is the bare sequential baseline of the figures.
func benchSeq(b *testing.B, structure string, cfg workload.Config) {
	b.Helper()
	set := harness.NewSeqStructure(structure, cfg)
	workload.FillSeq(set, cfg)
	gen := workload.NewGen(cfg, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.ApplySeq(set, gen.Next())
	}
	b.StopTimer()
	if ms := b.Elapsed().Seconds() * 1000; ms > 0 {
		b.ReportMetric(float64(b.N)/ms, "ops/ms")
	}
}

// benchFigure runs one paper figure: both bulk mixes, sequential baseline
// plus all four engines.
func benchFigure(b *testing.B, structure string) {
	for _, bulk := range []int{5, 15} {
		cfg := workload.Default(bulk)
		b.Run(fmt.Sprintf("bulk=%d", bulk), func(b *testing.B) {
			b.Run("sequential", func(b *testing.B) { benchSeq(b, structure, cfg) })
			for _, name := range benchEngines {
				eng, ok := harness.EngineByName(name)
				if !ok {
					b.Fatalf("unknown engine %q", name)
				}
				b.Run(name, func(b *testing.B) { benchSTM(b, eng, structure, cfg) })
			}
		})
	}
}

// BenchmarkFig6 regenerates Fig. 6: LinkedListSet throughput/aborts.
func BenchmarkFig6(b *testing.B) { benchFigure(b, "linkedlist") }

// BenchmarkFig7 regenerates Fig. 7: SkipListSet throughput/aborts.
func BenchmarkFig7(b *testing.B) { benchFigure(b, "skiplist") }

// BenchmarkFig8 regenerates Fig. 8: HashSet (load factor 512)
// throughput/aborts.
func BenchmarkFig8(b *testing.B) { benchFigure(b, "hashset") }

// BenchmarkAblationElasticity isolates the elastic model's contribution:
// OE-STM with elastic search operations versus the same engine forcing
// Regular transactions, on the structure where elasticity matters most.
func BenchmarkAblationElasticity(b *testing.B) {
	cfg := workload.Default(5)
	b.Run("elastic", func(b *testing.B) {
		benchSTM(b, harness.Engine{Name: "oestm", New: func() stm.TM { return core.New() }}, "linkedlist", cfg)
	})
	b.Run("regular-only", func(b *testing.B) {
		benchSTM(b, harness.Engine{Name: "oestm-regular", New: func() stm.TM { return core.NewRegularOnly() }}, "linkedlist", cfg)
	})
}

// BenchmarkAblationOutheritanceOverhead measures what outherit() costs on
// a workload without bulk operations (no compositions): OE-STM versus
// E-STM should be indistinguishable.
func BenchmarkAblationOutheritanceOverhead(b *testing.B) {
	cfg := workload.Default(0) // singles only
	b.Run("outherit", func(b *testing.B) {
		benchSTM(b, harness.Engine{Name: "oestm", New: func() stm.TM { return core.New() }}, "skiplist", cfg)
	})
	b.Run("no-outherit", func(b *testing.B) {
		benchSTM(b, harness.Engine{Name: "estm", New: func() stm.TM { return core.NewWithoutOutheritance() }}, "skiplist", cfg)
	})
}

// BenchmarkAblationCoarseLock compares composed operations under OE-STM
// against the coarse-grained lock alternative of §I (a global RWMutex
// around the sequential structure).
func BenchmarkAblationCoarseLock(b *testing.B) {
	cfg := workload.Default(15)
	b.Run("oestm", func(b *testing.B) {
		benchSTM(b, harness.Engine{Name: "oestm", New: func() stm.TM { return core.New() }}, "linkedlist", cfg)
	})
	b.Run("coarse-lock", func(b *testing.B) {
		set := coarse.Wrap(seqset.NewLinkedListSet())
		for _, k := range cfg.FillKeys() {
			set.Add(k)
		}
		var tidx atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			gen := workload.NewGen(cfg, int(tidx.Add(1)))
			for pb.Next() {
				op := gen.Next()
				switch op.Kind {
				case workload.Contains:
					set.Contains(op.Key)
				case workload.Add:
					set.Add(op.Key)
				case workload.Remove:
					set.Remove(op.Key)
				case workload.AddAll:
					set.AddAll(op.Pair[:])
				case workload.RemoveAll:
					set.RemoveAll(op.Pair[:])
				}
			}
		})
		b.StopTimer()
		if ms := b.Elapsed().Seconds() * 1000; ms > 0 {
			b.ReportMetric(float64(b.N)/ms, "ops/ms")
		}
	})
}

// BenchmarkComposedAddAll measures the bulk operation itself (the unit of
// composition) across engines: one AddAll+RemoveAll pair per iteration.
func BenchmarkComposedAddAll(b *testing.B) {
	for _, name := range benchEngines {
		eng, _ := harness.EngineByName(name)
		b.Run(name, func(b *testing.B) {
			cfg := workload.Default(5)
			tm := eng.New()
			set := harness.NewStructure("hashset", cfg)
			th := stm.NewThread(tm)
			workload.Fill(th, set, cfg)
			keys := []int{8191, 4096, 1} // odd keys: absent in the fill
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set.AddAll(th, keys)
				set.RemoveAll(th, keys)
			}
		})
	}
}
