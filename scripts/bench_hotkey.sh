#!/usr/bin/env bash
# bench_hotkey.sh — boosted-vs-RMW A/B benchmark for the commutative
# hot-key path. Starts compose-server twice (identical engine, shards
# and seeded workload; only -boost differs: on vs off), drives each
# with the same zipfian add-heavy compose-load mix, and writes
# BENCH_hotkey.json with both sides' throughput, abort and hot-key
# counters plus the machine context needed to interpret them. The
# server runs oversubscribed (GOMAXPROCS, default 8) so the hot key
# genuinely contends even on small boxes; the recorded core count is
# runtime.NumCPU — on one core the absolute throughputs mean little,
# but the abort asymmetry (boosted adds never conflict, RMW adds
# serialize through version conflicts) is the measured claim.
#
# Each side also runs with the admin plane up (-admin-addr) and the
# JSON records a /metrics scrape taken right after the measured load:
# the per-cause abort composition straight from the Prometheus series,
# so the artifact explains *why* one side aborted more, not just how
# much.
#
# Usage: scripts/bench_hotkey.sh [out.json]
# Env:   DURATION=5s CONNS=4 ENGINE=oestm SHARDS=16 KEYS=1024
#        THETA=0.99 MIX="add:70,madd:15,get:10,mget:5" SEED=7
#        WARMUP=500ms SRV_PROCS=8
set -euo pipefail

OUT=${1:-BENCH_hotkey.json}
DURATION=${DURATION:-5s}
WARMUP=${WARMUP:-500ms}
CONNS=${CONNS:-4}
ENGINE=${ENGINE:-oestm}
SHARDS=${SHARDS:-16}
KEYS=${KEYS:-1024}
THETA=${THETA:-0.99}
MIX=${MIX:-add:70,madd:15,get:10,mget:5}
SEED=${SEED:-7}
SRV_PROCS=${SRV_PROCS:-8}
ADDR=${ADDR:-127.0.0.1:7466}
ADMIN=${ADMIN:-127.0.0.1:9466}

TMP=$(mktemp -d)
SRV=""
trap '[ -n "$SRV" ] && kill "$SRV" 2>/dev/null; rm -rf "$TMP"' EXIT

go build -o "$TMP/compose-server" ./cmd/compose-server
go build -o "$TMP/compose-load" ./cmd/compose-load
go build -o "$TMP/httpget" ./scripts/httpget

run_side() { # $1 = on|off; leaves the CSV data row in $TMP/$1.row
    local boost=$1 csv="$TMP/$1.csv"
    GOMAXPROCS=$SRV_PROCS "$TMP/compose-server" -addr "$ADDR" -admin-addr "$ADMIN" \
        -engine "$ENGINE" -shards "$SHARDS" -boost "$boost" >"$TMP/$1.log" 2>&1 &
    SRV=$!
    sleep 1
    "$TMP/compose-load" -addr "$ADDR" -conns "$CONNS" -keys "$KEYS" \
        -mix "$MIX" -dist zipfian -theta "$THETA" -seed "$SEED" \
        -duration "$DURATION" -warmup "$WARMUP" -csv "$csv" >"$TMP/$1.load.log" 2>&1
    # Snapshot the admin plane's exposition before the server goes away:
    # the JSON's abort-cause composition comes from this scrape.
    "$TMP/httpget" "http://$ADMIN/metrics" >"$TMP/$1.metrics"
    kill -TERM "$SRV"
    wait "$SRV"
    SRV=""
    grep -q drained "$TMP/$1.log" # the A/B is only valid if the drain stayed clean
    sed -n 2p "$csv" >"$TMP/$1.row"
}

# abort_causes renders one side's compose_aborts_total series as a JSON
# object: {"read_validation": N, "lock_busy": N, ...}.
abort_causes() { # $1 = on|off
    awk '/^compose_aborts_total\{cause="/ { split($1, a, "\""); printf "%s\"%s\": %s", sep, a[2], $2; sep=", " }' \
        "$TMP/$1.metrics"
}

run_side on
run_side off
ON_ROW=$(cat "$TMP/on.row")
OFF_ROW=$(cat "$TMP/off.row")

# Column positions come from harness.CSVHeader: ops_per_ms=9,
# abort_rate=10, aborts=19; the hot-key block is the trailing
# adds,boosted_ops,hot_promotions,hot_demotions.
emit_side() {
    echo "$1" | awk -F, '{ printf "{\"ops_per_ms\": %s, \"abort_rate\": %s, \"aborts\": %s, \"adds\": %s, \"boosted_ops\": %s, \"hot_promotions\": %s, \"hot_demotions\": %s}", $9, $10, $19, $(NF-3), $(NF-2), $(NF-1), $NF }'
}

# runtime.NumCPU, not nproc: the Go runtime's affinity/cgroup-aware
# count is what the servers actually scheduled on.
CORES=$(go run ./scripts/numcpu)
SPEEDUP=$(awk -F, -v off="$(echo "$OFF_ROW" | cut -d, -f9)" \
    -v on="$(echo "$ON_ROW" | cut -d, -f9)" \
    'BEGIN { printf "%.3f", on / off }')

{
    echo "{"
    echo "  \"bench\": \"hotkey-ab\","
    echo "  \"engine\": \"$ENGINE\","
    echo "  \"cores\": $CORES,"
    echo "  \"gomaxprocs_server\": $SRV_PROCS,"
    echo "  \"conns\": $CONNS,"
    echo "  \"shards\": $SHARDS,"
    echo "  \"keys\": $KEYS,"
    echo "  \"dist\": \"zipfian:$THETA\","
    echo "  \"mix\": \"$MIX\","
    echo "  \"seed\": $SEED,"
    echo "  \"duration\": \"$DURATION\","
    echo "  \"boosted\": $(emit_side "$ON_ROW"),"
    echo "  \"rmw\": $(emit_side "$OFF_ROW"),"
    echo "  \"boosted_abort_causes\": {$(abort_causes on)},"
    echo "  \"rmw_abort_causes\": {$(abort_causes off)},"
    echo "  \"boosted_over_rmw_speedup\": $SPEEDUP,"
    echo "  \"note\": \"same-seed A/B; boosted adds take abstract per-key locks and cannot conflict, so the claim under test is strictly fewer aborts at equal-or-better throughput. The server is oversubscribed (gomaxprocs_server) so the hot key contends even when cores is small; compare throughputs only against the recorded core count\""
    echo "}"
} >"$OUT"
echo "wrote $OUT (cores=$CORES, boosted/rmw throughput = ${SPEEDUP}x)"
