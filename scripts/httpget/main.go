// Command httpget fetches one URL and writes the response body to
// stdout — a stdlib-only curl stand-in so the bench scripts can scrape
// a compose-server admin plane (/metrics snapshots into the BENCH
// artifacts) without depending on curl being installed. Non-2xx
// responses and transport errors exit non-zero.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: httpget <url>")
		os.Exit(2)
	}
	cl := &http.Client{Timeout: 30 * time.Second}
	resp, err := cl.Get(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		fmt.Fprintf(os.Stderr, "httpget: %s: %s\n", os.Args[1], resp.Status)
		os.Exit(1)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
}
