// Command numcpu prints runtime.NumCPU() — the CPU count the Go
// runtime will actually schedule on (affinity- and cgroup-aware where
// the OS exposes it), which is what the bench scripts record as
// "cores" so A/B results from different machines stay comparable.
package main

import (
	"fmt"
	"runtime"
)

func main() {
	fmt.Println(runtime.NumCPU())
}
