#!/usr/bin/env bash
# bench_specexec.sh — conn-vs-batch A/B benchmark for the speculative
# batch executor. Starts compose-server twice (identical engine, shards
# and workload; only -exec differs), drives each with compose-load at
# the given pipelining depth, and writes BENCH_specexec.json with both
# sides' throughput, latency and speculation counters plus the machine
# context (core count) needed to interpret them — batch needs real
# parallelism to win, so a single-core result is expected to favor conn
# and is recorded as such, not hidden.
#
# Each side also runs with the admin plane up (-admin-addr) and the
# JSON records a /metrics scrape taken right after the measured load:
# the per-cause abort composition straight from the Prometheus series.
#
# Usage: scripts/bench_specexec.sh [out.json]
# Env:   DURATION=5s CONNS=4 PIPELINE=16 ENGINE=oestm SHARDS=16
#        KEYS=8192 DIST=uniform WARMUP=500ms
set -euo pipefail

OUT=${1:-BENCH_specexec.json}
DURATION=${DURATION:-5s}
WARMUP=${WARMUP:-500ms}
CONNS=${CONNS:-4}
PIPELINE=${PIPELINE:-16}
ENGINE=${ENGINE:-oestm}
SHARDS=${SHARDS:-16}
KEYS=${KEYS:-8192}
DIST=${DIST:-uniform}
ADDR=${ADDR:-127.0.0.1:7465}
ADMIN=${ADMIN:-127.0.0.1:9465}

TMP=$(mktemp -d)
SRV=""
trap '[ -n "$SRV" ] && kill "$SRV" 2>/dev/null; rm -rf "$TMP"' EXIT

go build -o "$TMP/compose-server" ./cmd/compose-server
go build -o "$TMP/compose-load" ./cmd/compose-load
go build -o "$TMP/httpget" ./scripts/httpget

run_side() { # $1 = conn|batch; leaves the CSV data row in $TMP/$1.row
    local exec_mode=$1 csv="$TMP/$1.csv"
    "$TMP/compose-server" -addr "$ADDR" -admin-addr "$ADMIN" -engine "$ENGINE" \
        -shards "$SHARDS" -exec "$exec_mode" >"$TMP/$1.log" 2>&1 &
    SRV=$!
    sleep 1
    "$TMP/compose-load" -addr "$ADDR" -conns "$CONNS" -pipeline "$PIPELINE" \
        -keys "$KEYS" -dist "$DIST" -duration "$DURATION" -warmup "$WARMUP" \
        -csv "$csv" >"$TMP/$1.load.log" 2>&1
    # Snapshot the admin plane's exposition before the server goes away.
    "$TMP/httpget" "http://$ADMIN/metrics" >"$TMP/$1.metrics"
    kill -TERM "$SRV"
    wait "$SRV"
    SRV=""
    grep -q drained "$TMP/$1.log" # the A/B is only valid if the drain stayed clean
    sed -n 2p "$csv" >"$TMP/$1.row"
}

# abort_causes renders one side's compose_aborts_total series as a JSON
# object: {"read_validation": N, "lock_busy": N, ...}.
abort_causes() { # $1 = conn|batch
    awk '/^compose_aborts_total\{cause="/ { split($1, a, "\""); printf "%s\"%s\": %s", sep, a[2], $2; sep=", " }' \
        "$TMP/$1.metrics"
}

run_side conn
run_side batch
CONN_ROW=$(cat "$TMP/conn.row")
BATCH_ROW=$(cat "$TMP/batch.row")

# Column positions come from harness.CSVHeader: ops_per_ms=9,
# lat_p50_us=12, lat_p99_us=14; the trailing block is
# wal,wal_appends,wal_syncs,wal_bytes,exec,spec_execs,spec_reexecs,
# spec_validation_fails,adds,boosted_ops,hot_promotions,hot_demotions.
emit_side() {
    echo "$1" | awk -F, '{ printf "{\"ops_per_ms\": %s, \"lat_p50_us\": %s, \"lat_p99_us\": %s, \"exec\": \"%s\", \"spec_execs\": %s, \"spec_reexecs\": %s, \"spec_validation_fails\": %s}", $9, $12, $14, $(NF-7), $(NF-6), $(NF-5), $(NF-4) }'
}

# runtime.NumCPU, not nproc: the Go runtime's affinity/cgroup-aware
# count is what the servers actually scheduled on, so re-records from
# bigger machines stay comparable.
CORES=$(go run ./scripts/numcpu)
SPEEDUP=$(awk -F, -v conn="$(echo "$CONN_ROW" | cut -d, -f9)" \
    -v batch="$(echo "$BATCH_ROW" | cut -d, -f9)" \
    'BEGIN { printf "%.3f", batch / conn }')

{
    echo "{"
    echo "  \"bench\": \"specexec-ab\","
    echo "  \"engine\": \"$ENGINE\","
    echo "  \"cores\": $CORES,"
    echo "  \"conns\": $CONNS,"
    echo "  \"pipeline\": $PIPELINE,"
    echo "  \"shards\": $SHARDS,"
    echo "  \"keys\": $KEYS,"
    echo "  \"dist\": \"$DIST\","
    echo "  \"duration\": \"$DURATION\","
    echo "  \"conn\": $(emit_side "$CONN_ROW"),"
    echo "  \"batch\": $(emit_side "$BATCH_ROW"),"
    echo "  \"conn_abort_causes\": {$(abort_causes conn)},"
    echo "  \"batch_abort_causes\": {$(abort_causes batch)},"
    echo "  \"batch_over_conn_speedup\": $SPEEDUP,"
    echo "  \"note\": \"batch wins only with real parallelism (>= 4 cores) and pipeline depth >= 16; on fewer cores workers time-slice and conn mode's lower coordination cost is expected to win — compare against cores above\""
    echo "}"
} >"$OUT"
echo "wrote $OUT (cores=$CORES, batch/conn = ${SPEEDUP}x)"
