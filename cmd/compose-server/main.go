// Command compose-server serves the sharded transactional key-value
// store over TCP: one engine instance (selectable, like everywhere in
// the harness), a power-of-two-sharded keyspace of engine-backed
// eec.SkipListMaps, and the length-prefixed binary protocol of
// internal/wire with single-key operations (get/put/remove) and
// composed multi-key operations (mget snapshot, mput, compare-and-move
// across shards), each executed as one relaxed transaction.
//
//	compose-server -addr :7461 -engine oestm -cm adaptive -shards 16
//
// Drive it with compose-load (same table/CSV schema as compose-bench)
// and scrape merged telemetry — per-opcode latency histograms and
// per-cause abort counters across all connections — with the protocol's
// stats request. SIGINT/SIGTERM drain gracefully: accepted connections
// finish the requests they have already sent.
//
// -unsound splits every composed operation into separate transactions
// (the deliberately broken baseline of the cross-shard atomicity
// checkers); pair it with -max-retries so torn structures cannot wedge a
// connection.
//
// -wal-dir makes the store durable: every acknowledged mutation is
// group-committed to a per-shard write-ahead log (internal/wal) before
// the response leaves the server, and a restart pointed at the same
// directory replays the log (and any -snapshot-every checkpoints) back
// into the shards before accepting connections. -fsync=false trades
// power-loss durability for throughput while remaining crash-safe
// against SIGKILL.
//
// -admin-addr starts the observability plane (internal/obs) on a second
// listener: /metrics (Prometheus text exposition of the same merged
// telemetry the stats opcode serves, plus per-shard series), /stats
// (the binary stats payload over HTTP), /debug/aborts (the abort
// flight recorder, drained on read) and /debug/pprof/. Off by default;
// bind it to localhost or an internal interface — it is unauthenticated.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"oestm/internal/cm"
	"oestm/internal/harness"
	"oestm/internal/obs"
	"oestm/internal/server"
	"oestm/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":7461", "TCP listen address")
		engine  = flag.String("engine", "oestm", "engine to serve: oestm, lsa, tl2, swisstm, estm")
		shards  = flag.Int("shards", store.DefaultShards, "shard count (power of two)")
		cmName  = flag.String("cm", cm.DefaultName, "contention-management policy per connection: "+strings.Join(cm.Names(), "|"))
		retries = flag.Int("max-retries", 0, "bound composed-request transaction retries (0 = unlimited; exhaustion returns a typed error)")
		unsound = flag.Bool("unsound", false, "split composed operations into separate transactions (atomicity deliberately broken)")
		boost   = flag.String("boost", "auto", "commutative hot-key path for add/madd: off (read-modify-write control), auto (promote keys whose add stream aborts), on (boost every add)")
		drain   = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget before connections are closed hard")
		walDir  = flag.String("wal-dir", "", "write-ahead-log directory: makes the store durable, recovering its contents on start (empty = in-memory only)")
		fsync   = flag.Bool("fsync", true, "fsync every WAL group commit (with -wal-dir; off, acknowledged writes survive crashes but not power loss)")
		snap    = flag.Duration("snapshot-every", 0, "periodic WAL snapshot interval (with -wal-dir; 0 = none)")
		exec    = flag.String("exec", server.ExecConn, "execution model: conn (goroutine per connection) or batch (speculative batch executor; pipelined bursts run as optimistic parallel batches committed in arrival order)")
		workers = flag.Int("batch-workers", 0, "batch executor worker-pool size (with -exec=batch; 0 = GOMAXPROCS)")
		maxBat  = flag.Int("max-batch", 0, "max requests per speculation batch (with -exec=batch; 0 = library default)")
		admin   = flag.String("admin-addr", "", "admin HTTP listen address for /metrics, /stats, /debug/aborts and /debug/pprof/ (empty = off)")
	)
	flag.Parse()

	eng, ok := harness.EngineByName(*engine)
	if !ok {
		fmt.Fprintf(os.Stderr, "compose-server: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	boostMode, err := store.ParseBoostMode(*boost)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compose-server:", err)
		os.Exit(2)
	}
	srv, err := server.New(server.Config{
		Addr:          *addr,
		Engine:        eng.Name,
		NewTM:         eng.New,
		Shards:        *shards,
		CM:            *cmName,
		MaxRetries:    *retries,
		Unsound:       *unsound,
		Boost:         boostMode,
		WALDir:        *walDir,
		Fsync:         *fsync,
		SnapshotEvery: *snap,
		Exec:          *exec,
		BatchWorkers:  *workers,
		MaxBatch:      *maxBat,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "compose-server:", err)
		os.Exit(2)
	}
	if rp := srv.Recovery(); rp != nil {
		fmt.Println("compose-server:", rp.Summary())
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "compose-server:", err)
		os.Exit(1)
	}
	var adm *obs.Admin
	if *admin != "" {
		adm = obs.NewAdmin(obs.AdminConfig{
			Addr:     *admin,
			Stats:    srv.Telemetry,
			Recorder: srv.Flight(),
		})
		if err := adm.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "compose-server: admin:", err)
			os.Exit(1)
		}
		fmt.Printf("compose-server: admin plane on http://%s (/metrics /stats /debug/aborts /debug/pprof/)\n", adm.Addr())
	}
	mode := ""
	if *unsound {
		mode = " (UNSOUND: composed atomicity deliberately broken)"
	}
	fmt.Printf("compose-server: engine=%s cm=%s shards=%d exec=%s boost=%s listening on %s%s\n",
		eng.Name, *cmName, *shards, *exec, boostMode, srv.Addr(), mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("compose-server: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "compose-server: drain incomplete:", err)
		os.Exit(1)
	}
	if adm != nil {
		// After the data plane: a scrape racing the drain still answers.
		if err := adm.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "compose-server: admin drain incomplete:", err)
		}
	}
	fmt.Println("compose-server: drained")
}
