// Command compose-bench regenerates the paper's evaluation (§VII):
// Figures 6, 7 and 8 — throughput and abort ratio of bare sequential
// code, OE-STM, LSA, TL2 and SwissTM on the LinkedListSet, SkipListSet
// and HashSet of the e.e.c package, at 5% and 15% bulk operations across
// a thread sweep.
//
// Defaults are sized to finish in a couple of minutes; use -duration,
// -runs and -threads to approach the paper's 10-second, 10-run protocol:
//
//	compose-bench -figure all -bulk 5,15 -duration 10s -runs 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"oestm/internal/harness"
	"oestm/internal/workload"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate: 6 (linked list), 7 (skip list), 8 (hash set), or all")
		bulks    = flag.String("bulk", "5,15", "comma-separated bulk-operation percentages (paper: 5 and 15)")
		threads  = flag.String("threads", "1,2,4,8,16,32,64", "comma-separated thread counts")
		duration = flag.Duration("duration", 1*time.Second, "measured duration per point (paper: 10s)")
		warmup   = flag.Duration("warmup", 200*time.Millisecond, "warmup before measuring")
		runs     = flag.Int("runs", 1, "runs per point, averaged (paper: 10)")
		engines  = flag.String("engines", "oestm,lsa,tl2,swisstm", "engines to compare (also: estm)")
		scale    = flag.Int("scale", 1, "divide structure size and key range by this factor for quick runs")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file")
	)
	flag.Parse()

	structures := map[string]string{"6": "linkedlist", "7": "skiplist", "8": "hashset"}
	var figs []string
	if *figure == "all" {
		figs = []string{"6", "7", "8"}
	} else {
		if _, ok := structures[*figure]; !ok {
			fmt.Fprintf(os.Stderr, "compose-bench: unknown figure %q\n", *figure)
			os.Exit(2)
		}
		figs = []string{*figure}
	}

	var engs []harness.Engine
	for _, name := range splitList(*engines) {
		e, ok := harness.EngineByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "compose-bench: unknown engine %q\n", name)
			os.Exit(2)
		}
		engs = append(engs, e)
	}
	threadList, err := parseInts(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compose-bench: -threads:", err)
		os.Exit(2)
	}
	bulkList, err := parseInts(*bulks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compose-bench: -bulk:", err)
		os.Exit(2)
	}

	var allResults []harness.Result
	for _, fig := range figs {
		structure := structures[fig]
		for _, bulk := range bulkList {
			cfg := workload.Default(bulk)
			if *scale > 1 {
				cfg = workload.Scaled(bulk, *scale)
			}
			results := harness.Sweep(harness.SweepConfig{
				Structure:  structure,
				BulkPct:    bulk,
				Threads:    threadList,
				Duration:   *duration,
				Warmup:     *warmup,
				Runs:       *runs,
				Engines:    engs,
				Sequential: true,
				Workload:   cfg,
			})
			fmt.Println(harness.Format(results, structure, bulk))
			allResults = append(allResults, results...)
		}
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(harness.CSV(allResults)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "compose-bench: write csv:", err)
			os.Exit(1)
		}
		fmt.Println("csv written to", *csvPath)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
