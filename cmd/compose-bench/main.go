// Command compose-bench is the evaluation harness in executable form.
//
// In its default (figure) mode it regenerates the paper's evaluation
// (§VII): Figures 6, 7 and 8 — throughput and abort ratio of bare
// sequential code, OE-STM, LSA, TL2 and SwissTM on the LinkedListSet,
// SkipListSet and HashSet of the e.e.c package, at 5% and 15% bulk
// operations across a thread sweep.
//
// With -scenario it instead runs the composed-transaction scenario suite
// — workloads made of cross-structure compositions, each with an atomic
// invariant audit whose violation count is reported per point (always 0
// on a transactional engine):
//
//	move              atomic remove/add across a linked list and a hash set
//	insert-if-absent  the paper's Fig. 1 composition on a skip list
//	bank              Get/Put transfers in a SkipListMap, total-balance audits
//	pipeline          producer/stage/consumer over two Queues, conservation audits
//
// Both modes sweep two additional dimensions:
//
//   - -cm: each named contention-management policy (passive, aggressive,
//     adaptive — see internal/cm) is installed on every worker thread and
//     measured as its own set of points, so engines can be compared under
//     different retry policies; tables and CSV report the per-cause abort
//     breakdown beside throughput.
//   - -dist: each named key distribution (uniform, zipfian, hotspot,
//     shifting-hotspot — see internal/workload's distribution layer)
//     reshapes which keys the workers touch, from the paper's uniform
//     setting to production-shaped hot-key skew; -theta, -hot and
//     -shift-every parameterise them. Every point also reports
//     per-operation latency percentiles (p50/p99 in tables,
//     p50/p95/p99/max in CSV) from allocation-free per-worker histograms.
//
// Defaults are sized to finish in a couple of minutes; use -duration,
// -runs and -threads to approach the paper's 10-second, 10-run protocol:
//
//	compose-bench -figure all -bulk 5,15 -duration 10s -runs 10
//	compose-bench -scenario all -engines all -duration 10s -runs 10
//	compose-bench -scenario bank -cm passive,aggressive,adaptive
//	compose-bench -dist uniform,zipfian -theta 0.99
//	compose-bench -scenario bank -dist hotspot -hot 90/10 -cm all
//
// CSV output (-csv) uses the schema documented in the README ("CSV
// schema"); the header line is harness.CSVHeader.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"oestm/internal/cm"
	"oestm/internal/harness"
	"oestm/internal/workload"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate: 6 (linked list), 7 (skip list), 8 (hash set), or all")
		scenario = flag.String("scenario", "", "run composed-transaction scenarios instead of the figures: comma-separated names from "+strings.Join(workload.ScenarioNames(), "|")+", or all")
		bulks    = flag.String("bulk", "5,15", "comma-separated bulk-operation percentages for figure mode (paper: 5 and 15)")
		threads  = flag.String("threads", "1,2,4,8,16,32,64", "comma-separated thread counts")
		duration = flag.Duration("duration", 1*time.Second, "measured duration per point (paper: 10s)")
		warmup   = flag.Duration("warmup", 200*time.Millisecond, "warmup before measuring")
		runs     = flag.Int("runs", 1, "runs per point, averaged (paper: 10); scenario violations are summed")
		engines  = flag.String("engines", "oestm,lsa,tl2,swisstm", "engines to compare (also: estm), or all for every engine")
		cms      = flag.String("cm", cm.DefaultName, "comma-separated contention-management policies to sweep per engine: "+strings.Join(cm.Names(), "|")+", or all")
		dists    = flag.String("dist", workload.DistUniform, "comma-separated key distributions to sweep: "+strings.Join(workload.DistNames(), "|")+", or all")
		theta    = flag.Float64("theta", workload.DefaultTheta, "zipfian skew in (0,1); higher is more skewed")
		hot      = flag.String("hot", fmt.Sprintf("%d/%d", workload.DefaultHotOpsPct, workload.DefaultHotKeysPct), "hotspot shape as opsPct/keysPct: opsPct% of operations target keysPct% of the keys")
		shift    = flag.Int("shift-every", workload.DefaultShiftEvery, "shifting-hotspot: per-thread draws between hot-window rotations")
		scale    = flag.Int("scale", 1, "divide structure sizes and key ranges by this factor for quick runs")
		audit    = flag.Int("audit", 5, "scenario mode: percentage of steps that run the invariant audit")
		unsound  = flag.Bool("unsound", false, "scenario mode: run each composition as separate transactions (atomicity deliberately broken; expect non-zero violations)")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file (schema: "+harness.CSVHeader+")")
	)
	flag.Parse()

	var engs []harness.Engine
	if *engines == "all" {
		engs = harness.AllEngines()
	} else {
		for _, name := range splitList(*engines) {
			e, ok := harness.EngineByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "compose-bench: unknown engine %q\n", name)
				os.Exit(2)
			}
			engs = append(engs, e)
		}
	}
	threadList, err := parseInts(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compose-bench: -threads:", err)
		os.Exit(2)
	}
	var cmList []string
	if *cms == "all" {
		cmList = cm.Names()
	} else {
		for _, name := range splitList(*cms) {
			if _, ok := cm.New(name); !ok {
				fmt.Fprintf(os.Stderr, "compose-bench: unknown contention-management policy %q (have: %s)\n", name, strings.Join(cm.Names(), ", "))
				os.Exit(2)
			}
			cmList = append(cmList, name)
		}
	}
	distList, err := parseDists(*dists, *theta, *hot, *shift)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compose-bench:", err)
		os.Exit(2)
	}

	var allResults []harness.Result
	if *scenario != "" {
		allResults = runScenarios(*scenario, engs, cmList, distList, threadList, *duration, *warmup, *runs, *scale, *audit, *unsound)
	} else {
		allResults = runFigures(*figure, *bulks, engs, cmList, distList, threadList, *duration, *warmup, *runs, *scale)
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(harness.CSV(allResults)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "compose-bench: write csv:", err)
			os.Exit(1)
		}
		fmt.Println("csv written to", *csvPath)
	}
}

// parseDists builds the distribution sweep from the -dist/-theta/-hot/
// -shift-every flags: every named distribution shares the scalar
// parameters.
func parseDists(dists string, theta float64, hot string, shiftEvery int) ([]workload.DistConfig, error) {
	names := splitList(dists)
	if dists == "all" {
		names = workload.DistNames()
	}
	// Reject out-of-range scalars here: DistConfig treats zero fields as
	// "use the default", so an explicit 0 would otherwise silently run
	// the default shape under the default's label.
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("-theta %v out of range (0,1)", theta)
	}
	hotOps, hotKeys, err := parseHotSpec(hot)
	if err != nil {
		return nil, err
	}
	if hotOps < 1 || hotOps > 100 || hotKeys < 1 || hotKeys > 100 {
		return nil, fmt.Errorf("-hot %d/%d out of range (both parts in [1,100])", hotOps, hotKeys)
	}
	if shiftEvery < 1 {
		return nil, fmt.Errorf("-shift-every %d must be positive", shiftEvery)
	}
	var out []workload.DistConfig
	for _, name := range names {
		d := workload.DistConfig{
			Name:       name,
			Theta:      theta,
			HotOpsPct:  hotOps,
			HotKeysPct: hotKeys,
			ShiftEvery: shiftEvery,
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("-dist: %w (have: %s)", err, strings.Join(workload.DistNames(), ", "))
		}
		out = append(out, d)
	}
	return out, nil
}

// parseHotSpec parses the -hot "opsPct/keysPct" form.
func parseHotSpec(s string) (opsPct, keysPct int, err error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-hot %q: want opsPct/keysPct, e.g. 90/10", s)
	}
	if opsPct, err = strconv.Atoi(strings.TrimSpace(parts[0])); err != nil {
		return 0, 0, fmt.Errorf("-hot %q: %w", s, err)
	}
	if keysPct, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil {
		return 0, 0, fmt.Errorf("-hot %q: %w", s, err)
	}
	return opsPct, keysPct, nil
}

// runFigures reproduces the paper's Figs. 6-8 panels.
func runFigures(figure, bulks string, engs []harness.Engine, cmList []string, distList []workload.DistConfig, threadList []int, duration, warmup time.Duration, runs, scale int) []harness.Result {
	structures := map[string]string{"6": "linkedlist", "7": "skiplist", "8": "hashset"}
	var figs []string
	if figure == "all" {
		figs = []string{"6", "7", "8"}
	} else {
		if _, ok := structures[figure]; !ok {
			fmt.Fprintf(os.Stderr, "compose-bench: unknown figure %q\n", figure)
			os.Exit(2)
		}
		figs = []string{figure}
	}
	bulkList, err := parseInts(bulks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compose-bench: -bulk:", err)
		os.Exit(2)
	}

	var allResults []harness.Result
	for _, fig := range figs {
		structure := structures[fig]
		for _, bulk := range bulkList {
			cfg := workload.Default(bulk)
			if scale > 1 {
				cfg = workload.Scaled(bulk, scale)
			}
			results := harness.Sweep(harness.SweepConfig{
				Structure:  structure,
				BulkPct:    bulk,
				Threads:    threadList,
				Duration:   duration,
				Warmup:     warmup,
				Runs:       runs,
				Engines:    engs,
				CMs:        cmList,
				Dists:      distList,
				Sequential: true,
				Workload:   cfg,
			})
			fmt.Println(harness.Format(results, structure, bulk))
			allResults = append(allResults, results...)
		}
	}
	return allResults
}

// runScenarios runs the composed-transaction scenario panels.
func runScenarios(scenario string, engs []harness.Engine, cmList []string, distList []workload.DistConfig, threadList []int, duration, warmup time.Duration, runs, scale, audit int, unsound bool) []harness.Result {
	names := splitList(scenario)
	if scenario == "all" {
		names = workload.ScenarioNames()
	}
	known := map[string]bool{}
	for _, n := range workload.ScenarioNames() {
		known[n] = true
	}
	for _, n := range names {
		if !known[n] {
			fmt.Fprintf(os.Stderr, "compose-bench: unknown scenario %q (have: %s)\n", n, strings.Join(workload.ScenarioNames(), ", "))
			os.Exit(2)
		}
	}

	cfg := workload.DefaultScenarioConfig().Scaled(scale)
	cfg.AuditPct = audit
	cfg.Unsound = unsound

	var allResults []harness.Result
	for _, name := range names {
		results := harness.ScenarioSweep(harness.ScenarioSweepConfig{
			Scenario: name,
			Threads:  threadList,
			Duration: duration,
			Warmup:   warmup,
			Runs:     runs,
			Engines:  engs,
			CMs:      cmList,
			Dists:    distList,
			Workload: cfg,
		})
		fmt.Println(harness.FormatScenario(results, name))
		allResults = append(allResults, results...)
	}
	return allResults
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
