// Command compose-check machine-verifies the paper's formal development:
// the §II-B relax-serial-but-not-serializable example, Fig. 3 /
// Theorem 4.2 (outheritance does not give strong composition),
// Theorem 4.3 (outheritance is necessary for weak composition), and —
// on a live, instrumented OE-STM execution — Definition 4.1 and
// Theorem 4.4 (outheritance is sufficient).
package main

import (
	"fmt"
	"os"

	"oestm/internal/check"
	"oestm/internal/core"
	"oestm/internal/history"
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

var failed bool

func verdict(name string, got, want bool) {
	status := "ok"
	if got != want {
		status = "FAIL"
		failed = true
	}
	fmt.Printf("  %-58s %-5v (want %-5v) %s\n", name, got, want, status)
}

func main() {
	fmt.Println("== §II-B example: relax-serializability is weaker than serializability ==")
	h := check.SectionIIBHistory()
	specs := check.SectionIIBSpecs()
	verdict("history is relax-serial", check.RelaxSerial(h), true)
	verdict("history is well-formed", check.WellFormed(h), true)
	verdict("history is serializable", check.Serializable(h, specs), false)
	verdict("history is relax-serializable", check.RelaxSerializable(h, specs), true)

	fmt.Println("\n== Fig. 3 / Theorem 4.2: outheritance does not imply strong composition ==")
	h = check.Fig3History()
	specs = check.Fig3Specs()
	c := check.Fig3Composition()
	verdict("C = {t1,t3} is a composition of p1", check.IsComposition(h, c), true)
	verdict("history satisfies outheritance w.r.t. C", check.Outheritance(h, c), true)
	verdict("history is strongly composable w.r.t. C", check.StronglyComposable(h, c, specs), false)
	verdict("history is weakly composable w.r.t. C (Thm 4.4)", check.WeaklyComposable(h, c, specs), true)

	fmt.Println("\n== Theorem 4.3: outheritance is necessary for weak composition ==")
	h = check.Theorem43History()
	specs = check.Theorem43Specs()
	c = check.Theorem43Composition()
	verdict("construction is relax-serial", check.RelaxSerial(h), true)
	verdict("early release breaks outheritance", check.Outheritance(h, c), false)
	verdict("construction is weakly composable", check.WeaklyComposable(h, c, specs), false)

	fmt.Println("\n== Live OE-STM execution (instrumented): Def. 4.1 and Thm 4.4 ==")
	hh, comps := runInstrumented(core.New())
	verdict("recorded history is well-formed", check.WellFormed(hh), true)
	verdict("recorded history is relax-serial", check.RelaxSerial(hh), true)
	allOK := len(comps) > 0
	for _, cc := range comps {
		if !check.Outheritance(hh, cc) {
			allOK = false
		}
	}
	verdict("every recorded composition satisfies outheritance", allOK, true)

	fmt.Println("\n== Live E-STM execution (outheritance disabled): Def. 4.1 violated ==")
	hh, comps = runInstrumented(core.NewWithoutOutheritance())
	anyViolated := false
	for _, cc := range comps {
		if !check.Outheritance(hh, cc) {
			anyViolated = true
		}
	}
	verdict("some recorded composition violates outheritance", anyViolated, true)

	if failed {
		fmt.Println("\nRESULT: FAIL")
		os.Exit(1)
	}
	fmt.Println("\nRESULT: all checks passed")
}

// runInstrumented executes the paper's insertIfAbsent composition with an
// adversarial interleaving under the given engine and returns the
// recorded history and compositions.
func runInstrumented(tm *core.TM) (history.History, [][]string) {
	rec := history.NewRecorder()
	tm.SetTracer(rec)
	xv, yv := mvar.New(false), mvar.New(false)
	rec.Label(xv, "x")
	rec.Label(yv, "y")
	th := stm.NewThread(tm)
	attempt := 0
	_ = th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		attempt++
		absent := false
		_ = th.Atomic(stm.Elastic, func(ctx stm.Tx) error {
			absent = !ctx.Read(yv).(bool)
			return nil
		})
		if attempt == 1 {
			adv := stm.NewThread(tm)
			_ = adv.Atomic(stm.Regular, func(atx stm.Tx) error {
				atx.Write(yv, true)
				return nil
			})
		}
		return th.Atomic(stm.Elastic, func(ctx stm.Tx) error {
			if absent {
				ctx.Write(xv, true)
			} else {
				_ = ctx.Read(xv)
			}
			return nil
		})
	})
	return rec.History(), rec.Compositions()
}
