// Command compose-load is the closed-loop load generator for
// compose-server: N connections each issue one request at a time —
// get/put/remove plus the composed mget/mput/compare-and-move, mixed by
// -mix — timing every round trip into the harness's allocation-free
// histograms, with keys drawn through the same distribution layer as the
// in-process workloads (-dist/-theta/-hot/-shift-every).
//
// Results print in the harness's scenario table and CSV schema
// (harness.CSVHeader), so a networked run is column-for-column
// comparable with compose-bench: engine and cm come from the server's
// stats endpoint, abort telemetry (total and per cause) is the server
// delta over the measured window, latency percentiles are client-side
// round-trip times.
//
//	compose-server -engine oestm -cm adaptive &
//	compose-load -addr localhost:7461 -conns 8 -dist zipfian -theta 0.99 -duration 5s -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"oestm/internal/harness"
	"oestm/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7461", "compose-server address")
		conns    = flag.Int("conns", 8, "connections (= concurrent closed loops; the table's threads column)")
		duration = flag.Duration("duration", 5*time.Second, "measured duration")
		warmup   = flag.Duration("warmup", 500*time.Millisecond, "warmup before measuring")
		keys     = flag.Int("keys", 1<<13, "key universe size")
		span     = flag.Int("span", 8, "batch size of mget/mput requests")
		mixSpec  = flag.String("mix", harness.DefaultLoadMix().String(), "request mix, op:pct pairs summing to 100")
		dist     = flag.String("dist", workload.DistUniform, "key distribution: "+strings.Join(workload.DistNames(), "|"))
		theta    = flag.Float64("theta", workload.DefaultTheta, "zipfian skew in (0,1)")
		hot      = flag.String("hot", fmt.Sprintf("%d/%d", workload.DefaultHotOpsPct, workload.DefaultHotKeysPct), "hotspot shape opsPct/keysPct")
		shift    = flag.Int("shift-every", workload.DefaultShiftEvery, "shifting-hotspot rotation period (draws)")
		pipeline = flag.Int("pipeline", 1, "requests per round trip (pipelining depth; a batch-mode server executes each burst as one speculation batch)")
		seed     = flag.Uint64("seed", 0, "worker seed (0 = default)")
		noFill   = flag.Bool("no-fill", false, "skip pre-filling the keyspace")
		report   = flag.Duration("report-every", 0, "print live windowed progress (ops/s, p50/p99, abort rate) to stderr at this period while measuring (0 = off)")
		csvPath  = flag.String("csv", "", "also write the result as CSV (schema: "+harness.CSVHeader+")")
		scenario = flag.String("scenario", harness.LoadScenario, "load shape: server (the -mix closed loop) or counter-fanin (conservation checker: zero-sum madd transfers + tracked fan-in adds + snapshot audits; exits 3 on violations)")
		expViol  = flag.Bool("expect-violation", false, "with -scenario counter-fanin: require violations > 0 (for checking an -unsound server) instead of requiring 0")
	)
	flag.Parse()

	mix, err := harness.ParseLoadMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compose-load:", err)
		os.Exit(2)
	}
	var hotOps, hotKeys int
	if _, err := fmt.Sscanf(*hot, "%d/%d", &hotOps, &hotKeys); err != nil {
		fmt.Fprintf(os.Stderr, "compose-load: -hot %q: want opsPct/keysPct\n", *hot)
		os.Exit(2)
	}
	distCfg := workload.DistConfig{
		Name:       *dist,
		Theta:      *theta,
		HotOpsPct:  hotOps,
		HotKeysPct: hotKeys,
		ShiftEvery: *shift,
	}
	if err := distCfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "compose-load:", err)
		os.Exit(2)
	}

	loadCfg := harness.LoadConfig{
		Addr:     *addr,
		Conns:    *conns,
		Duration: *duration,
		Warmup:   *warmup,
		Keys:     *keys,
		Span:     *span,
		Mix:      mix,
		Dist:     distCfg,
		Seed:     *seed,
		SkipFill: *noFill,
		Pipeline: *pipeline,

		ReportEvery: *report,
	}
	var result harness.Result
	switch *scenario {
	case harness.LoadScenario:
		result, err = harness.RunLoad(loadCfg)
	case harness.CounterFaninScenario:
		result, err = harness.RunCounterFanin(loadCfg)
	default:
		fmt.Fprintf(os.Stderr, "compose-load: unknown -scenario %q (want %s or %s)\n",
			*scenario, harness.LoadScenario, harness.CounterFaninScenario)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "compose-load:", err)
		os.Exit(1)
	}

	results := []harness.Result{result}
	fmt.Println(harness.FormatScenario(results, *scenario))
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(harness.CSV(results)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "compose-load: write csv:", err)
			os.Exit(1)
		}
		fmt.Println("csv written to", *csvPath)
	}
	if *scenario == harness.CounterFaninScenario {
		if *expViol && result.Violations == 0 {
			fmt.Fprintln(os.Stderr, "compose-load: counter-fanin expected violations (unsound server) but saw none")
			os.Exit(3)
		}
		if !*expViol && result.Violations > 0 {
			fmt.Fprintf(os.Stderr, "compose-load: counter-fanin conservation broken: %d violations\n", result.Violations)
			os.Exit(3)
		}
	}
}
