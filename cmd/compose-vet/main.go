// compose-vet statically enforces the repository's STM contracts: raw
// word access (varaccess), word copies (wordcopy), abort-cause
// classification (causeclass), per-operation transaction closures
// (framecapture), and //compose:noalloc escape-analysis verification
// (noalloc). See ARCHITECTURE.md "Static contracts" for what each
// analyzer pins and why.
//
// Standalone usage (the way CI runs it):
//
//	compose-vet [-analyzers varaccess,wordcopy,...] [packages]
//
// with the usual go package patterns (default ./...). Any diagnostic
// makes the exit status 1.
//
// The binary also speaks the `go vet -vettool` unit-checker protocol
// (-V=full / -flags / a single *.cfg argument), so it can replace the
// standard vet tool in a build:
//
//	go vet -vettool=$(which compose-vet) ./...
//
// A fixture directory that `go list` cannot see (testdata) can be
// analyzed directly with -fixture, which is how CI smokes that the suite
// actually fires on known-bad input.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"oestm/internal/analysis"
	"oestm/internal/analysis/suite"
)

// selfHash returns a hex digest of the running executable, used as the
// tool's build ID in the -V=full probe.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func main() {
	// The go vet tool protocol: `go vet` first probes the tool's version
	// and flags, then invokes it once per package with a config file.
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	for _, arg := range args {
		if strings.HasPrefix(arg, "-V") {
			// go vet derives the tool's build ID from this line; the
			// buildID= field must change whenever the binary does, so
			// hash the executable itself (the unitchecker convention).
			fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, selfHash())
			os.Exit(0)
		}
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		os.Exit(0)
	}
	if n := len(args); n >= 1 && strings.HasSuffix(args[n-1], ".cfg") {
		jsonOut := false
		for _, a := range args[:n-1] {
			if a == "-json" {
				jsonOut = true
			}
		}
		unitcheck(args[n-1], jsonOut)
		return
	}

	var (
		analyzers = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		fixture   = flag.String("fixture", "", "analyze a single fixture directory (for testdata packages invisible to go list)")
		list      = flag.Bool("list", false, "list the analyzers of the suite and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [package patterns]\n", progname)
		flag.PrintDefaults()
	}
	flag.Parse()

	selected := suite.All()
	if *analyzers != "" {
		var ok bool
		selected, ok = suite.ByName(strings.Split(*analyzers, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "%s: unknown analyzer in -analyzers=%s\n", progname, *analyzers)
			os.Exit(2)
		}
	}
	if *list {
		for _, a := range suite.All() {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	var pkgs []*analysis.Package
	var err error
	if *fixture != "" {
		var pkg *analysis.Package
		pkg, err = analysis.LoadFixture(*fixture)
		pkgs = []*analysis.Package{pkg}
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		wd, werr := os.Getwd()
		if werr != nil {
			fatal(progname, werr)
		}
		pkgs, err = analysis.Load(wd, patterns...)
	}
	if err != nil {
		fatal(progname, err)
	}

	found := 0
	for _, pkg := range pkgs {
		for _, a := range selected {
			diags, err := pkg.Run(a)
			if err != nil {
				fatal(progname, err)
			}
			for _, d := range diags {
				fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, a.Name)
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d contract violation(s)\n", progname, found)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func fatal(progname string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
	os.Exit(2)
}

// vetConfig is the JSON configuration `go vet` hands a -vettool per
// package (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package as directed by a go vet config file.
func unitcheck(cfgFile string, jsonOut bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal("compose-vet", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal("compose-vet", fmt.Errorf("parsing %s: %v", cfgFile, err))
	}
	// compose-vet has no cross-package facts, but go vet requires the
	// facts file to exist before it will cache the action.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal("compose-vet", err)
		}
	}
	if cfg.VetxOnly {
		return
	}
	// Resolve import paths as written to export data files.
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for as, canonical := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canonical]; ok {
			exports[as] = f
		}
	}
	pkg, err := analysis.LoadVetPackage(cfg.ImportPath, cfg.Dir, cfg.GoFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal("compose-vet", err)
	}
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	jsonTree := map[string]map[string][]jsonDiag{cfg.ImportPath: {}}
	found := 0
	for _, a := range suite.All() {
		diags, err := pkg.Run(a)
		if err != nil {
			fatal("compose-vet", err)
		}
		if jsonOut {
			out := make([]jsonDiag, 0, len(diags))
			for _, d := range diags {
				out = append(out, jsonDiag{Posn: pkg.Fset.Position(d.Pos).String(), Message: d.Message})
			}
			if len(out) > 0 {
				jsonTree[cfg.ImportPath][a.Name] = out
			}
			found += len(out)
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, a.Name)
			found++
		}
	}
	if jsonOut {
		keys := make([]string, 0, len(jsonTree))
		for k := range jsonTree {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(jsonTree); err != nil {
			fatal("compose-vet", err)
		}
		return
	}
	if found > 0 {
		os.Exit(2)
	}
}
