// Command compose-demo reproduces the paper's Figure 1: composing an
// elastic contains(y) and an elastic insert(x) into insertIfAbsent(x, y)
// breaks atomicity under plain E-STM — a concurrent insert(y) lands after
// contains(y) found it absent but before the composition commits — while
// OE-STM's outheritance makes the same composition retry and behave
// atomically.
//
// The demo runs the adversarial interleaving deterministically on the
// e.e.c LinkedListSet, then hammers the same composition with concurrent
// inserters to show the violation is not an artefact of the staging.
package main

import (
	"fmt"
	"sync"

	"oestm/internal/core"
	"oestm/internal/eec"
	"oestm/internal/stm"
)

const (
	x = 100
	y = 200
)

// staged runs the deterministic Figure 1 interleaving and reports whether
// the composed operation violated atomicity (x inserted although y is
// present) and how many attempts the composition took.
func staged(tm stm.TM) (violated bool, attempts int) {
	s := eec.NewLinkedListSet()
	th := stm.NewThread(tm)
	_ = th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		attempts++
		absent := !s.Contains(th, y) // child 1 (elastic, read-only)
		if attempts == 1 {
			adv := stm.NewThread(tm)
			adv.Atomic(stm.Regular, func(atx stm.Tx) error { return nil }) // warm the thread
			s.Add(adv, y)                                                  // the adversarial insert(y)
		}
		if absent {
			s.Add(th, x) // child 2 (elastic, writer)
		}
		return nil
	})
	return s.Contains(th, x) && s.Contains(th, y), attempts
}

// hammer races insertIfAbsent(x, y) against a concurrent inserter of y
// and counts atomicity violations. Both final orders are legal, so the
// oracle must be commit-order aware: the adversary checks for x inside
// the same transaction that inserts y. If the adversary did not see x,
// it serialised before the composition — so the composition must have
// seen y and may not insert x. x present anyway means the composed
// contains(y)/add(x) pair was torn.
func hammer(mk func() stm.TM, rounds int) (violations int) {
	for i := 0; i < rounds; i++ {
		tm := mk()
		s := eec.NewLinkedListSet()
		var wg sync.WaitGroup
		var sawX bool
		wg.Add(2)
		go func() {
			defer wg.Done()
			th := stm.NewThread(tm)
			eec.InsertIfAbsent(th, s, x, y)
		}()
		go func() {
			defer wg.Done()
			th := stm.NewThread(tm)
			_ = th.Atomic(stm.Elastic, func(stm.Tx) error {
				s.Add(th, y)
				sawX = s.Contains(th, x)
				return nil
			})
		}()
		wg.Wait()
		th := stm.NewThread(tm)
		if !sawX && s.Contains(th, x) {
			violations++
		}
	}
	return violations
}

func main() {
	fmt.Println("Figure 1: insertIfAbsent(x, y) composed from elastic contains(y) + insert(x)")
	fmt.Println("Invariant: x must never be inserted when y is present.")
	fmt.Println()

	v, attempts := staged(core.NewWithoutOutheritance())
	fmt.Printf("E-STM  (no outheritance): staged interleaving -> violated=%v attempts=%d\n", v, attempts)
	v2, attempts2 := staged(core.New())
	fmt.Printf("OE-STM (outheritance):    staged interleaving -> violated=%v attempts=%d\n", v2, attempts2)
	fmt.Println()

	const rounds = 2000
	ev := hammer(func() stm.TM { return core.NewWithoutOutheritance() }, rounds)
	ov := hammer(func() stm.TM { return core.New() }, rounds)
	fmt.Printf("E-STM  racing rounds: %d/%d atomicity violations\n", ev, rounds)
	fmt.Printf("OE-STM racing rounds: %d/%d atomicity violations\n", ov, rounds)
	fmt.Println()

	switch {
	case v && !v2 && ov == 0:
		fmt.Println("RESULT: E-STM composition breaks atomicity; outheritance (OE-STM) repairs it.")
	case ov > 0:
		fmt.Println("RESULT: UNEXPECTED — OE-STM violated atomicity")
	default:
		fmt.Println("RESULT: staged violation did not reproduce (scheduling); see internal/core tests for the deterministic check")
	}
}
