// Package oestm is the public facade of this repository: a Go
// implementation of "Composing Relaxed Transactions" (Gramoli, Guerraoui,
// Letia — IEEE IPDPS 2013).
//
// It exposes:
//
//   - OE-STM, a software transactional memory providing elastic (relaxed)
//     transactions that satisfy outheritance and therefore compose
//     (engines: NewOESTM; ablations: NewESTM, NewRegularOnlySTM);
//   - the classic-transaction baselines used by the paper's evaluation
//     (NewTL2, NewLSA, NewSwissTM), all driving the same transactional
//     memory words;
//   - the e.e.c composable collections (NewLinkedListSet, NewSkipListSet,
//     NewHashSet) whose bulk operations are obtained by composition;
//   - the transactional programming surface: per-goroutine Threads,
//     Atomic regions, Kinds, and raw transactional variables (Var) for
//     building new data structures.
//
// Quick start:
//
//	tm := oestm.NewOESTM()
//	th := oestm.NewThread(tm)
//	set := oestm.NewLinkedListSet()
//	set.Add(th, 1)
//	set.AddAll(th, []int{2, 3}) // atomic, composed from Add
//
// Composition: call any set operation — or open your own Atomic region —
// while a transaction is already open on the Thread, and it becomes a
// nested (composed) transaction whose conflict information is outherited
// to the parent:
//
//	th.Atomic(oestm.Elastic, func(oestm.Tx) error {
//		if !set.Contains(th, y) {
//			set.Add(th, x)
//		}
//		return nil // atomic insert-if-absent
//	})
package oestm

import (
	"oestm/internal/cm"
	"oestm/internal/core"
	"oestm/internal/eec"
	"oestm/internal/lsa"
	"oestm/internal/mvar"
	"oestm/internal/stm"
	"oestm/internal/swisstm"
	"oestm/internal/tl2"
)

// Kind selects the transactional model of a region.
type Kind = stm.Kind

const (
	// Regular requests classic (serializable) transactional semantics.
	Regular = stm.Regular
	// Elastic requests the elastic model: conflicts on the transaction's
	// read-only prefix are ignored.
	Elastic = stm.Elastic
)

// TM is a transactional memory engine.
type TM = stm.TM

// Tx is the in-transaction operation interface.
type Tx = stm.Tx

// Thread is the per-goroutine transactional context. Threads must not be
// shared between goroutines.
type Thread = stm.Thread

// Var is an untyped transactional variable holding an arbitrary value
// (writes box the value). For allocation-free hot paths prefer the typed
// Ref and Flag variables.
type Var = mvar.AnyVar

// Ref is a typed transactional variable holding a *T directly in the
// memory word's pointer cell: reads and writes never allocate.
type Ref[T any] = mvar.Var[T]

// Flag is a typed transactional boolean (no boxing).
type Flag = mvar.Flag

// Int is a typed transactional integer (no boxing) — transactional
// counters and sequence numbers for composed workloads.
type Int = mvar.IntVar

// Word is the engine-facing versioned-lock memory word every
// transactional variable is built on; the lock-word encoding and its
// 63-bit version/owner budgets are documented in internal/mvar.
type Word = mvar.Word

// Set is the composable integer-set abstraction of the e.e.c package.
type Set = eec.Set

// ErrConflict is the conflict sentinel every conflict-shaped error
// matches via errors.Is — including the *RetryExhaustedError a
// bounded-retry transaction returns when it gives up. Match with
// errors.Is(err, ErrConflict), not ==.
var ErrConflict = stm.ErrConflict

// ConflictCause classifies why a transaction attempt aborted; every abort
// is counted per cause in Thread.Stats.AbortsByCause and reported to the
// thread's ContentionManager.
type ConflictCause = stm.ConflictCause

// The conflict causes engines classify their abort sites with.
const (
	CauseReadValidation    = stm.CauseReadValidation
	CauseLockBusy          = stm.CauseLockBusy
	CauseSnapshotExtension = stm.CauseSnapshotExtension
	CauseCommitValidation  = stm.CauseCommitValidation
	CauseElasticWindow     = stm.CauseElasticWindow
	CauseDoomed            = stm.CauseDoomed
	CauseExplicit          = stm.CauseExplicit
)

// RetryExhaustedError is returned by Atomic when Thread.MaxRetries is
// exceeded; it carries the attempt count and the last conflict's cause
// and still matches errors.Is(err, ErrConflict).
type RetryExhaustedError = stm.RetryExhaustedError

// ContentionManager decides how a thread reacts to aborts; install one on
// Thread.CM. The built-in policies are available by name through
// NewContentionManager.
type ContentionManager = stm.ContentionManager

// NewContentionManager returns a fresh instance of the named contention
// policy ("passive", "aggressive", "adaptive"); ok is false for unknown
// names. Instances are per-thread and must not be shared.
func NewContentionManager(name string) (m ContentionManager, ok bool) { return cm.New(name) }

// ContentionManagerNames lists the registered contention policies,
// default first.
func ContentionManagerNames() []string { return cm.Names() }

// NewOESTM returns the paper's engine: elastic transactions with
// outheritance.
func NewOESTM() *core.TM { return core.New() }

// NewESTM returns the elastic engine without outheritance (E-STM); its
// compositions can violate atomicity — provided for demonstrations and
// ablations.
func NewESTM() *core.TM { return core.NewWithoutOutheritance() }

// NewRegularOnlySTM returns OE-STM with elasticity disabled (ablation).
func NewRegularOnlySTM() *core.TM { return core.NewRegularOnly() }

// NewTL2 returns the TL2 baseline engine.
func NewTL2() *tl2.TM { return tl2.New() }

// NewLSA returns the LSA baseline engine.
func NewLSA() *lsa.TM { return lsa.New() }

// NewSwissTM returns the SwissTM baseline engine.
func NewSwissTM() *swisstm.TM { return swisstm.New() }

// NewThread creates a transactional context bound to tm for the calling
// goroutine.
func NewThread(tm TM) *Thread { return stm.NewThread(tm) }

// NewVar returns an untyped transactional variable holding v.
func NewVar(v any) *Var { return mvar.New(v) }

// NewRef returns a typed transactional variable holding p.
func NewRef[T any](p *T) *Ref[T] { return mvar.NewVar(p) }

// Read reads v inside tx with a typed result.
func Read[T any](tx Tx, v *Var) T { return stm.ReadT[T](tx, v) }

// ReadRef reads the typed variable v inside tx (allocation-free).
func ReadRef[T any](tx Tx, v *Ref[T]) *T { return stm.ReadPtr(tx, v) }

// WriteRef buffers a new pointer for the typed variable v inside tx
// (allocation-free).
func WriteRef[T any](tx Tx, v *Ref[T], p *T) { stm.WritePtr(tx, v, p) }

// ReadFlag reads the transactional boolean v inside tx.
func ReadFlag(tx Tx, v *Flag) bool { return stm.ReadFlag(tx, v) }

// WriteFlag buffers a new value for the transactional boolean v inside
// tx.
func WriteFlag(tx Tx, v *Flag, b bool) { stm.WriteFlag(tx, v, b) }

// ReadInt reads the transactional integer v inside tx (allocation-free).
func ReadInt(tx Tx, v *Int) int64 { return stm.ReadInt(tx, v) }

// WriteInt buffers a new value for the transactional integer v inside
// tx.
func WriteInt(tx Tx, v *Int, n int64) { stm.WriteInt(tx, v, n) }

// Conflict aborts the current transaction attempt and retries it; for
// use inside Atomic regions.
func Conflict(reason string) { stm.Conflict(reason) }

// NewLinkedListSet returns the sorted linked-list set of e.e.c.
func NewLinkedListSet() *eec.LinkedListSet { return eec.NewLinkedListSet() }

// NewSkipListSet returns the skip-list set of e.e.c.
func NewSkipListSet() *eec.SkipListSet { return eec.NewSkipListSet() }

// NewHashSet returns the hash set of e.e.c with the given bucket count.
func NewHashSet(buckets int) *eec.HashSet { return eec.NewHashSet(buckets) }

// NewHashSetForLoad returns a hash set sized for the paper's load factor.
func NewHashSetForLoad(expectedElems int) *eec.HashSet {
	return eec.NewHashSetForLoad(expectedElems)
}

// NewSkipListMap returns the ordered transactional map of e.e.c (the
// composable counterpart of ConcurrentSkipListMap).
func NewSkipListMap() *eec.SkipListMap { return eec.NewSkipListMap() }

// NewQueue returns the transactional FIFO queue of e.e.c (the composable
// counterpart of ConcurrentLinkedQueue).
func NewQueue() *eec.Queue { return eec.NewQueue() }

// InsertIfAbsent atomically inserts x into s only if y is absent (the
// paper's Fig. 1 composition).
func InsertIfAbsent(th *Thread, s Set, x, y int) bool {
	return eec.InsertIfAbsent(th, s, x, y)
}

// Move atomically transfers key between two sets.
func Move(th *Thread, from, to Set, key int) bool {
	return eec.Move(th, from, to, key)
}

// EarlyRelease removes v from the protected set of a running OE-STM
// transaction (DSTM-style early release, modelled in §II-A of the
// paper). It reports whether anything was released; transactions of the
// classic engines are rejected. Expert use only: releasing inside a
// composition forfeits weak composability (Theorem 4.3).
func EarlyRelease(tx Tx, v *Var) bool { return core.EarlyRelease(tx, v) }
