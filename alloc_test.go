// Allocation-regression tests for the typed transactional substrate: the
// hot paths of every engine — read-only elastic (or regular) operations
// and single-write commits over typed variables — must not allocate once
// the per-thread pooled transaction frames have warmed up. These lock in
// the de-boxing refactor: a regression that reintroduces payload boxing,
// per-Begin transaction allocation, or per-write map/entry allocation
// fails here long before it shows up in a benchmark.
package oestm_test

import (
	"testing"

	"oestm/internal/core"
	"oestm/internal/eec"
	"oestm/internal/lsa"
	"oestm/internal/mvar"
	"oestm/internal/stm"
	"oestm/internal/swisstm"
	"oestm/internal/tl2"
)

// allocEngines is every STM engine in the repository, including the
// non-outheriting E-STM ablation.
func allocEngines() []struct {
	name string
	newi func() stm.TM
} {
	return []struct {
		name string
		newi func() stm.TM
	}{
		{"oestm", func() stm.TM { return core.New() }},
		{"estm", func() stm.TM { return core.NewWithoutOutheritance() }},
		{"tl2", func() stm.TM { return tl2.New() }},
		{"lsa", func() stm.TM { return lsa.New() }},
		{"swisstm", func() stm.TM { return swisstm.New() }},
	}
}

// payload is the pointee of the typed variables under test.
type payload struct{ n int }

// opKindFor requests Elastic where supported so the oestm/estm engines
// exercise the sliding-window read path, not just the regular one.
func opKindFor(tm stm.TM) stm.Kind {
	if tm.SupportsElastic() {
		return stm.Elastic
	}
	return stm.Regular
}

// TestNoAllocReadOnly locks in zero allocations for a committed read-only
// transaction over typed variables: Begin (pooled), consistent reads of a
// small chain, and the read-only commit must all run allocation-free.
func TestNoAllocReadOnly(t *testing.T) {
	for _, eng := range allocEngines() {
		t.Run(eng.name, func(t *testing.T) {
			tm := eng.newi()
			th := stm.NewThread(tm)
			k := opKindFor(tm)
			vars := [3]*mvar.Var[payload]{
				mvar.NewVar(&payload{1}),
				mvar.NewVar(&payload{2}),
				mvar.NewVar(&payload{3}),
			}
			body := func(tx stm.Tx) error {
				for _, v := range vars {
					_ = stm.ReadPtr(tx, v)
				}
				return nil
			}
			if err := th.Atomic(k, body); err != nil { // warm the pooled frames
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := th.Atomic(k, body); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("read-only transaction allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// TestNoAllocSingleWriteCommit locks in zero allocations for a committed
// single-write transaction over a typed variable: the write-set entry,
// commit-time locking, and the typed payload install must all reuse
// pooled storage.
func TestNoAllocSingleWriteCommit(t *testing.T) {
	a, b := &payload{1}, &payload{2}
	for _, eng := range allocEngines() {
		t.Run(eng.name, func(t *testing.T) {
			tm := eng.newi()
			th := stm.NewThread(tm)
			k := opKindFor(tm)
			v := mvar.NewVar(a)
			body := func(tx stm.Tx) error {
				if stm.ReadPtr(tx, v) == a {
					stm.WritePtr(tx, v, b)
				} else {
					stm.WritePtr(tx, v, a)
				}
				return nil
			}
			if err := th.Atomic(k, body); err != nil { // warm the pooled frames
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := th.Atomic(k, body); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("single-write transaction allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// TestNoAllocFlagAndRetry covers the two remaining hot-path shapes: typed
// flag writes (scalar cell, no boxing) and the conflict-retry path, which
// must reuse the pooled transaction instead of allocating per attempt.
func TestNoAllocFlagAndRetry(t *testing.T) {
	for _, eng := range allocEngines() {
		t.Run(eng.name, func(t *testing.T) {
			tm := eng.newi()
			th := stm.NewThread(tm)
			k := opKindFor(tm)
			var fl mvar.Flag
			flip := func(tx stm.Tx) error {
				stm.WriteFlag(tx, &fl, !stm.ReadFlag(tx, &fl))
				return nil
			}
			if err := th.Atomic(k, flip); err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(100, func() {
				if err := th.Atomic(k, flip); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("flag write allocated %.1f times per run, want 0", allocs)
			}

			// Forced retries: the first two attempts of every Atomic call
			// conflict, so each run exercises two rollback+re-begin cycles
			// on the pooled frame.
			attempts := 0
			retrying := func(tx stm.Tx) error {
				attempts++
				stm.WriteFlag(tx, &fl, !stm.ReadFlag(tx, &fl))
				if attempts%3 != 0 {
					stm.Conflict("forced")
				}
				return nil
			}
			if err := th.Atomic(k, retrying); err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(100, func() {
				if err := th.Atomic(k, retrying); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("retry path allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// TestNoAllocElasticListSearch pins the Fig. 6 hot path end to end: an
// elementary Contains on the linked-list set — per-thread operation
// frame, elastic traversal, read-only commit — runs allocation-free.
func TestNoAllocElasticListSearch(t *testing.T) {
	for _, eng := range allocEngines() {
		t.Run(eng.name, func(t *testing.T) {
			tm := eng.newi()
			th := stm.NewThread(tm)
			set := newWarmSet(th)
			allocs := testing.AllocsPerRun(100, func() {
				set.Contains(th, 7)
				set.Contains(th, 8)
			})
			if allocs != 0 {
				t.Errorf("Contains allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// newWarmSet builds a small linked-list set and warms the thread's pooled
// frames against it.
func newWarmSet(th *stm.Thread) *eec.LinkedListSet {
	set := eec.NewLinkedListSet()
	for k := 0; k < 16; k++ {
		set.Add(th, k)
	}
	return set
}
